package core

import (
	"fmt"
	"math"

	"hetmpc/internal/graph"
	"hetmpc/internal/mpc"
	"hetmpc/internal/prims"
	"hetmpc/internal/unionfind"
)

// MinCutResult is the output of the minimum-cut algorithms.
type MinCutResult struct {
	Value  int64
	Trials int
	Stats  Stats
}

// MinCutUnweighted computes the exact minimum cut of an unweighted graph
// w.h.p. (Theorem C.3, via the 2-out contraction of Ghaffari-Nowicki-Thorup
// [32]): every vertex samples two incident edges, the resulting components
// are contracted, a random 1/(2δ)-rate edge sampling contracts further, and
// the surviving O(n)-edge multigraph is shipped to the large machine, which
// solves it exactly and compares against the singleton cuts. The trial is
// amplified O(log n) times (sequentially; DESIGN.md substitution 2).
func MinCutUnweighted(c *mpc.Cluster, g *graph.Graph) (*MinCutResult, error) {
	if !c.HasLarge() {
		return nil, errNeedsLarge("MinCutUnweighted")
	}
	sp := c.Span("mincut")
	n := g.N
	res := &MinCutResult{Value: math.MaxInt64}
	defer func() { res.Stats = statsOf(sp.End()) }()
	if len(g.Edges) == 0 {
		if n > 1 {
			res.Value = 0 // disconnected (or single vertex: no cut)
		}
		return res, nil
	}
	edges, err := prims.DistributeEdges(c, g)
	if err != nil {
		return nil, err
	}
	kk := c.K()
	needs := endpointNeedsOf(edges)

	// Singleton cuts: the vertex degrees.
	degItems := make([][]prims.KV[int64], kk)
	if err := c.ForSmall(func(i int) error {
		for _, e := range edges[i] {
			degItems[i] = append(degItems[i],
				prims.KV[int64]{K: int64(e.U), V: 1},
				prims.KV[int64]{K: int64(e.V), V: 1})
		}
		return nil
	}); err != nil {
		return nil, err
	}
	_, degAtLarge, err := prims.AggregateByKey(c, degItems, 1,
		func(a, b int64) int64 { return a + b }, true)
	if err != nil {
		return nil, err
	}
	if len(degAtLarge) < n {
		// Isolated vertex: cut 0.
		res.Value = 0
		return res, nil
	}
	for _, d := range degAtLarge {
		if d < res.Value {
			res.Value = d
		}
	}

	trials := 2*int(math.Ceil(math.Log2(float64(n)+2))) + 4
	capEdges := int64(c.LargeCap() / (4 * prims.EdgeWords))
	for trial := 0; trial < trials; trial++ {
		res.Trials++
		val, ok, err := minCutTrial(c, edges, needs, n, capEdges)
		if err != nil {
			return nil, err
		}
		if ok && val < res.Value {
			res.Value = val
		}
	}
	return res, nil
}

// twoOutVal carries the two independently-ranked minimum incident edges of a
// vertex (the vertex's 2-out sample).
type twoOutVal struct {
	R1, R2 uint64
	E1, E2 graph.Edge
}

const twoOutWords = 8

func minCutTrial(c *mpc.Cluster, edges [][]graph.Edge, needs [][]int64, n int, capEdges int64) (int64, bool, error) {
	kk := c.K()
	// 2-out sampling via two independent min-rank aggregations in one pass.
	items := make([][]prims.KV[twoOutVal], kk)
	if err := c.ForSmall(func(i int) error {
		rng := c.Rand(i)
		for _, e := range edges[i] {
			for _, v := range [2]int{e.U, e.V} {
				items[i] = append(items[i], prims.KV[twoOutVal]{
					K: int64(v),
					V: twoOutVal{R1: rng.Uint64(), R2: rng.Uint64(), E1: e, E2: e},
				})
			}
		}
		return nil
	}); err != nil {
		return 0, false, err
	}
	combine := func(a, b twoOutVal) twoOutVal {
		out := a
		if b.R1 < out.R1 {
			out.R1, out.E1 = b.R1, b.E1
		}
		if b.R2 < out.R2 {
			out.R2, out.E2 = b.R2, b.E2
		}
		return out
	}
	_, atLarge, err := prims.AggregateByKey(c, items, twoOutWords, combine, true)
	if err != nil {
		return 0, false, err
	}
	// Contract the 2-out components on the large machine.
	dsu := unionfind.New(n)
	keys := make([]int64, 0, len(atLarge))
	for v := range atLarge {
		keys = append(keys, v)
	}
	prims.SortInts(keys)
	for _, v := range keys {
		to := atLarge[v]
		dsu.Union(int(v), to.E1.Other(int(v)))
		dsu.Union(int(v), to.E2.Other(int(v)))
	}
	labels := make(map[int64]int64, n)
	for v := 0; v < n; v++ {
		labels[int64(v)] = int64(dsu.Find(v))
	}
	maps, err := prims.DisseminateFromLarge(c, needs, labels, 1)
	if err != nil {
		return 0, false, err
	}
	// Relabel, drop internal edges, compute the contracted min degree δ.
	contracted := make([][]graph.Edge, kk)
	cdegItems := make([][]prims.KV[int64], kk)
	if err := c.ForSmall(func(i int) error {
		for _, e := range edges[i] {
			u, v := maps[i][int64(e.U)], maps[i][int64(e.V)]
			if u == v {
				continue
			}
			ce := graph.Edge{U: int(u), V: int(v), W: 1}
			contracted[i] = append(contracted[i], ce)
			cdegItems[i] = append(cdegItems[i],
				prims.KV[int64]{K: u, V: 1},
				prims.KV[int64]{K: v, V: 1})
		}
		return nil
	}); err != nil {
		return 0, false, err
	}
	_, cdeg, err := prims.AggregateByKey(c, cdegItems, 1,
		func(a, b int64) int64 { return a + b }, true)
	if err != nil {
		return 0, false, err
	}
	if len(cdeg) == 0 {
		// Fully contracted: the 2-out subgraph was spanning; no non-trivial
		// candidate from this trial.
		return 0, false, nil
	}
	delta := int64(math.MaxInt64)
	for _, d := range cdeg {
		if d < delta {
			delta = d
		}
	}
	if delta < 1 {
		delta = 1
	}
	// Random-sampling contraction with p = 1/(2δ).
	p := 1 / (2 * float64(delta))
	ps, err := prims.BroadcastValue(c, p, 1)
	if err != nil {
		return 0, false, err
	}
	sampled := make([][]prims.KV[bool], kk)
	if err := c.ForSmall(func(i int) error {
		rng := c.Rand(i)
		for _, e := range contracted[i] {
			if rng.Float64() < ps[i] {
				sampled[i] = append(sampled[i], prims.KV[bool]{K: pairKey(e.U, e.V, n), V: true})
			}
		}
		return nil
	}); err != nil {
		return 0, false, err
	}
	_, sampledPairs, err := prims.AggregateByKey(c, sampled, 1,
		func(a, b bool) bool { return a || b }, true)
	if err != nil {
		return 0, false, err
	}
	spKeys := make([]int64, 0, len(sampledPairs))
	for key := range sampledPairs {
		spKeys = append(spKeys, key)
	}
	prims.SortInts(spKeys)
	for _, key := range spKeys {
		dsu.Union(int(key/int64(n)), int(key%int64(n)))
	}
	labels2 := make(map[int64]int64, n)
	for v := 0; v < n; v++ {
		labels2[int64(v)] = int64(dsu.Find(v))
	}
	maps2, err := prims.DisseminateFromLarge(c, needs, labels2, 1)
	if err != nil {
		return 0, false, err
	}
	final := make([][]graph.Edge, kk)
	if err := c.ForSmall(func(i int) error {
		for _, e := range edges[i] {
			u, v := maps2[i][int64(e.U)], maps2[i][int64(e.V)]
			if u != v {
				final[i] = append(final[i], graph.Edge{U: int(u), V: int(v), W: 1})
			}
		}
		return nil
	}); err != nil {
		return 0, false, err
	}
	cnt, err := prims.SumToLarge(c, countsOf(final))
	if err != nil {
		return 0, false, err
	}
	if cnt > capEdges {
		return 0, false, nil // unlucky trial (sampling too dense)
	}
	multi, err := prims.GatherToLarge(c, final, prims.EdgeWords)
	if err != nil {
		return 0, false, err
	}
	if len(multi) == 0 {
		if dsu.Count() > 1 {
			return 0, true, nil // disconnected graph
		}
		return 0, false, nil
	}
	// Exact min cut of the contracted multigraph on the large machine.
	val := stoerWagnerMulti(n, multi)
	return val, true, nil
}

// stoerWagnerMulti runs Stoer-Wagner on a multigraph given by (possibly
// repeated, sparse-id) unit edges, relabeling ids densely first.
func stoerWagnerMulti(n int, edges []graph.Edge) int64 {
	ids := make(map[int]int)
	for _, e := range edges {
		if _, ok := ids[e.U]; !ok {
			ids[e.U] = len(ids)
		}
		if _, ok := ids[e.V]; !ok {
			ids[e.V] = len(ids)
		}
	}
	dense := make([]graph.Edge, len(edges))
	for i, e := range edges {
		dense[i] = graph.Edge{U: ids[e.U], V: ids[e.V], W: e.W}
	}
	// StoerWagner accumulates parallel edges by weight addition.
	return graph.StoerWagner(&graph.Graph{N: len(ids), Edges: dense, Weighted: true})
}

// ApproxMinCut estimates the minimum cut of a weighted graph within (1±ε)
// w.h.p. (Theorem C.4): Karger-style skeletons at geometric cut guesses —
// each weighted edge contributes Binomial(w, q) unit edges at sampling rate
// q = Θ(log n/(ε²·λ̂)) — are shipped to the large machine, solved exactly,
// and rescaled; the first guess whose skeleton cut is large enough to
// concentrate is returned (see DESIGN.md substitution 3).
func ApproxMinCut(c *mpc.Cluster, g *graph.Graph, eps float64) (*MinCutResult, error) {
	if !c.HasLarge() {
		return nil, errNeedsLarge("ApproxMinCut")
	}
	if eps <= 0 || eps >= 1 {
		return nil, fmt.Errorf("core: eps must be in (0,1)")
	}
	sp := c.Span("approx-mincut")
	n := g.N
	res := &MinCutResult{Value: math.MaxInt64}
	defer func() { res.Stats = statsOf(sp.End()) }()
	if len(g.Edges) == 0 {
		if n > 1 {
			res.Value = 0
		}
		return res, nil
	}
	edges, err := prims.DistributeEdges(c, g)
	if err != nil {
		return nil, err
	}
	kk := c.K()

	// Weighted degrees = singleton cut upper bound.
	degItems := make([][]prims.KV[int64], kk)
	if err := c.ForSmall(func(i int) error {
		for _, e := range edges[i] {
			degItems[i] = append(degItems[i],
				prims.KV[int64]{K: int64(e.U), V: e.W},
				prims.KV[int64]{K: int64(e.V), V: e.W})
		}
		return nil
	}); err != nil {
		return nil, err
	}
	_, wdeg, err := prims.AggregateByKey(c, degItems, 1,
		func(a, b int64) int64 { return a + b }, true)
	if err != nil {
		return nil, err
	}
	if len(wdeg) < n {
		res.Value = 0 // isolated vertex
		return res, nil
	}
	upper := int64(math.MaxInt64)
	for _, d := range wdeg {
		if d < upper {
			upper = d
		}
	}
	res.Value = upper

	logn := math.Log(float64(n) + 2)
	threshold := 3 * logn / (eps * eps) // skeleton cut must exceed this to concentrate
	capEdges := int64(c.LargeCap() / (4 * prims.EdgeWords))
	lambda := float64(upper)
	for guess := 0; lambda >= 0.5; guess++ {
		res.Trials++
		q := 3 * logn / (eps * eps * lambda)
		if q > 1 {
			q = 1
		}
		qs, err := prims.BroadcastValue(c, q, 1)
		if err != nil {
			return nil, err
		}
		skeleton := make([][]graph.Edge, kk)
		if err := c.ForSmall(func(i int) error {
			rng := c.Rand(i)
			for _, e := range edges[i] {
				cnt := int64(0)
				if qs[i] >= 1 {
					cnt = e.W
				} else {
					// Binomial(w, q): exact loop for small weights, normal
					// approximation for large ones.
					if e.W <= 256 {
						for x := int64(0); x < e.W; x++ {
							if rng.Float64() < qs[i] {
								cnt++
							}
						}
					} else {
						mean := float64(e.W) * qs[i]
						sd := math.Sqrt(mean * (1 - qs[i]))
						cnt = int64(math.Round(mean + sd*rng.NormFloat64()))
						if cnt < 0 {
							cnt = 0
						}
						if cnt > e.W {
							cnt = e.W
						}
					}
				}
				if cnt > 0 {
					skeleton[i] = append(skeleton[i], graph.Edge{U: e.U, V: e.V, W: cnt})
				}
			}
			return nil
		}); err != nil {
			return nil, err
		}
		total, err := prims.SumToLarge(c, countsOf(skeleton))
		if err != nil {
			return nil, err
		}
		if total > capEdges {
			lambda /= 2
			continue // guess too small: skeleton too dense; refine downward
		}
		sk, err := prims.GatherToLarge(c, skeleton, prims.EdgeWords)
		if err != nil {
			return nil, err
		}
		var cut float64
		if len(sk) == 0 {
			cut = 0
		} else {
			cut = float64(stoerWagnerMulti(n, sk))
		}
		if q >= 1 {
			// Exact: the skeleton is the full graph.
			if int64(cut) < res.Value {
				res.Value = int64(cut)
			}
			break
		}
		if cut >= threshold {
			est := int64(math.Round(cut / q))
			if est < res.Value {
				res.Value = est
			}
			break
		}
		if cut == 0 && lambda <= 1 {
			res.Value = 0
			break
		}
		lambda /= 2
	}
	return res, nil
}
