package core

import (
	"fmt"
	"math"
	"math/bits"
	"slices"
	"sort"

	"hetmpc/internal/graph"
	"hetmpc/internal/mpc"
	"hetmpc/internal/prims"
	"hetmpc/internal/xrand"
)

// SpannerResult is the output of the §4 spanner algorithm.
type SpannerResult struct {
	Edges         []graph.Edge // the spanner H (original graph edges)
	Stretch       int          // guaranteed stretch: 6k-1 (12k-1 weighted)
	DirectLevels  int          // clustering graphs shipped whole to the large machine
	SampledLevels int          // clustering graphs spanned via modified Baswana-Sen
	Stats         Stats
}

// Spanner computes a (6k-1)-spanner of expected size O(n^{1+1/k}) for the
// unweighted graph g, in O(1) rounds (§4, Theorem 4.1): it builds the
// clustering graphs A_0..A_{logΔ-1} of [22] (Algorithm 5), spans each — the
// small ones directly on the large machine, the large ones via the modified
// Baswana-Sen algorithm with level-dependent sampling probabilities — and
// combines the pieces (Lemma A.2). All levels are batched through shared
// primitive invocations, so the round count is a constant independent of n,
// k and Δ.
func Spanner(c *mpc.Cluster, g *graph.Graph, k int) (*SpannerResult, error) {
	if !c.HasLarge() {
		return nil, errNeedsLarge("Spanner")
	}
	sp := c.Span("spanner")
	if k < 1 {
		k = 1
	}
	res := &SpannerResult{Stretch: 6*k - 1}
	defer func() { res.Stats = statsOf(sp.End()) }()
	n := g.N
	if len(g.Edges) == 0 {
		return res, nil
	}
	edges, err := prims.DistributeEdges(c, g)
	if err != nil {
		return nil, err
	}
	kk := c.K()

	// Shared randomness for the σ-selection ranks.
	seed, err := prims.BroadcastSeed(c)
	if err != nil {
		return nil, err
	}
	rankHash := xrand.NewHash(seed, 4)

	// Per-machine needs list (endpoints of stored edges), reused throughout.
	needs := make([][]int64, kk)
	if err := c.ForSmall(func(i int) error {
		seen := make(map[int64]bool, 2*len(edges[i]))
		for _, e := range edges[i] {
			for _, v := range [2]int{e.U, e.V} {
				if !seen[int64(v)] {
					seen[int64(v)] = true
					needs[i] = append(needs[i], int64(v))
				}
			}
		}
		slices.Sort(needs[i])
		return nil
	}); err != nil {
		return nil, err
	}

	// --- Step 1: degrees (Claim 2 + Claim 3) ---
	degItems := make([][]prims.KV[int64], kk)
	if err := c.ForSmall(func(i int) error {
		degItems[i] = make([]prims.KV[int64], 0, 2*len(edges[i]))
		for _, e := range edges[i] {
			degItems[i] = append(degItems[i],
				prims.KV[int64]{K: int64(e.U), V: 1},
				prims.KV[int64]{K: int64(e.V), V: 1})
		}
		return nil
	}); err != nil {
		return nil, err
	}
	_, degAtLarge, err := prims.AggregateByKey(c, degItems, 1,
		func(a, b int64) int64 { return a + b }, true)
	if err != nil {
		return nil, err
	}
	degMaps, err := prims.DisseminateFromLarge(c, needs, degAtLarge, 1)
	if err != nil {
		return nil, err
	}
	maxDeg := int64(1)
	for _, d := range degAtLarge {
		if d > maxDeg {
			maxDeg = d
		}
	}
	levels := bits.Len64(uint64(maxDeg)) // classes [2^i, 2^{i+1}), i = 0..levels-1
	if levels < 1 {
		levels = 1
	}

	// --- Step 2: hitting-set trials (Algorithm 5 lines 1-7) ---
	trials := int(math.Ceil(math.Log2(float64(n) + 2)))
	bitWords := ((levels-1)*trials + 63) / 64
	if bitWords < 1 {
		bitWords = 1
	}
	type vbits struct{ B []uint64 }
	dBit := func(b []uint64, lvl, j int) bool {
		idx := (lvl-1)*trials + j
		return b[idx/64]&(1<<(idx%64)) != 0
	}
	setDBit := func(b []uint64, lvl, j int) {
		idx := (lvl-1)*trials + j
		b[idx/64] |= 1 << (idx % 64)
	}
	lrng := c.LargeRand()
	vertsWithEdges := make([]int64, 0, len(degAtLarge))
	for v := range degAtLarge {
		vertsWithEdges = append(vertsWithEdges, v)
	}
	slices.Sort(vertsWithEdges)
	dbits := make(map[int64]vbits, len(degAtLarge))
	for _, v := range vertsWithEdges {
		b := make([]uint64, bitWords)
		for lvl := 1; lvl < levels; lvl++ {
			p := float64(lvl) / math.Pow(2, float64(lvl))
			for j := 0; j < trials; j++ {
				if lrng.Float64() < p {
					setDBit(b, lvl, j)
				}
			}
		}
		dbits[v] = vbits{B: b}
	}
	dMaps, err := prims.DisseminateFromLarge(c, needs, dbits, bitWords)
	if err != nil {
		return nil, err
	}

	// --- Step 3: neighbor-OR aggregation (Algorithm 5 line 11) ---
	orItems := make([][]prims.KV[vbits], kk)
	if err := c.ForSmall(func(i int) error {
		for _, e := range edges[i] {
			bu, bv := dMaps[i][int64(e.U)], dMaps[i][int64(e.V)]
			orItems[i] = append(orItems[i],
				prims.KV[vbits]{K: int64(e.U), V: bv},
				prims.KV[vbits]{K: int64(e.V), V: bu})
		}
		return nil
	}); err != nil {
		return nil, err
	}
	orCombine := func(a, b vbits) vbits {
		out := make([]uint64, len(a.B))
		for x := range out {
			out[x] = a.B[x] | b.B[x]
		}
		return vbits{B: out}
	}
	_, orAtLarge, err := prims.AggregateByKey(c, orItems, bitWords, orCombine, true)
	if err != nil {
		return nil, err
	}

	// Large machine: augment the trial sets, pick the smallest trial per
	// level (lines 13-16), and form B_i = ∪_{j>=i} D_j as per-vertex bitsets.
	sizes := make([][]int, levels) // [lvl][trial]
	for lvl := 1; lvl < levels; lvl++ {
		sizes[lvl] = make([]int, trials)
	}
	augmented := make(map[int64][]bool) // v → per (lvl,trial) augmented membership flattened
	for v, own := range dbits {
		deg := degAtLarge[v]
		cls := bits.Len64(uint64(deg)) - 1 // degree class
		or, hasOr := orAtLarge[v]
		mem := make([]bool, (levels-1)*trials)
		for lvl := 1; lvl < levels; lvl++ {
			for j := 0; j < trials; j++ {
				in := dBit(own.B, lvl, j)
				if !in && lvl <= cls {
					covered := hasOr && dBit(or.B, lvl, j)
					if !covered {
						in = true // u joins D_lvl^j (augmentation)
					}
				}
				if in {
					mem[(lvl-1)*trials+j] = true
					sizes[lvl][j]++
				}
			}
		}
		augmented[v] = mem
	}
	bestTrial := make([]int, levels)
	for lvl := 1; lvl < levels; lvl++ {
		best := 0
		for j := 1; j < trials; j++ {
			if sizes[lvl][j] < sizes[lvl][best] {
				best = j
			}
		}
		bestTrial[lvl] = best
	}
	type bset struct{ B uint64 }
	bbits := make(map[int64]bset, len(dbits))
	for v, mem := range augmented {
		var b uint64
		inAny := uint64(0)
		for lvl := levels - 1; lvl >= 1; lvl-- {
			if mem[(lvl-1)*trials+bestTrial[lvl]] {
				inAny |= 1 << lvl
			}
		}
		// B_i = union of D_j for j >= i (cumulative-down), plus B_0 = V.
		cum := uint64(0)
		for lvl := levels - 1; lvl >= 1; lvl-- {
			if inAny&(1<<lvl) != 0 {
				cum |= 1 << lvl
			}
			if cum&^((1<<lvl)-1) != 0 { // some D_j with j >= lvl contains v
				b |= 1 << lvl
			}
		}
		b |= 1 // B_0 = V
		bbits[v] = bset{B: b}
	}

	// --- Step 4: σ-selection aggregation (Algorithm 5 lines 18-29) ---
	bMaps, err := prims.DisseminateFromLarge(c, needs, bbits, 1)
	if err != nil {
		return nil, err
	}
	type sigSlot struct {
		Rank uint64
		Nbr  int32
		OU   int32
		OV   int32
		W    int64
	}
	type sigAgg struct {
		OrB   uint64
		Slots []sigSlot
	}
	sigWords := 1 + 5*levels
	sigItems := make([][]prims.KV[sigAgg], kk)
	if err := c.ForSmall(func(i int) error {
		for _, e := range edges[i] {
			for dir := 0; dir < 2; dir++ {
				u, v := e.U, e.V
				if dir == 1 {
					u, v = v, u
				}
				bv := bMaps[i][int64(v)].B
				agg := sigAgg{OrB: bv, Slots: make([]sigSlot, levels)}
				for s := range agg.Slots {
					agg.Slots[s].Nbr = -1
				}
				r := rankHash.Eval(uint64(u)*uint64(n) + uint64(v))
				for lvl := 0; lvl < levels; lvl++ {
					if bv&(1<<lvl) != 0 {
						agg.Slots[lvl] = sigSlot{Rank: r, Nbr: int32(v), OU: int32(e.U), OV: int32(e.V), W: e.W}
					}
				}
				sigItems[i] = append(sigItems[i], prims.KV[sigAgg]{K: int64(u), V: agg})
			}
		}
		return nil
	}); err != nil {
		return nil, err
	}
	sigCombine := func(a, b sigAgg) sigAgg {
		out := sigAgg{OrB: a.OrB | b.OrB, Slots: make([]sigSlot, len(a.Slots))}
		for s := range out.Slots {
			sa, sb := a.Slots[s], b.Slots[s]
			switch {
			case sa.Nbr < 0:
				out.Slots[s] = sb
			case sb.Nbr < 0:
				out.Slots[s] = sa
			case sb.Rank < sa.Rank || (sb.Rank == sa.Rank && sb.Nbr < sa.Nbr):
				out.Slots[s] = sb
			default:
				out.Slots[s] = sa
			}
		}
		return out
	}
	_, sigAtLarge, err := prims.AggregateByKey(c, sigItems, sigWords, sigCombine, true)
	if err != nil {
		return nil, err
	}

	// Large machine: compute i_u, σ_u and the star edges.
	var spanner []graph.Edge // accumulates H on the large machine
	sigma := make(map[int64]int64, len(degAtLarge))
	topLevel := make(map[int64]int, len(degAtLarge))
	for v, agg := range sigAtLarge {
		own := bbits[v].B
		all := own | agg.OrB
		iu := 63 - bits.LeadingZeros64(all) // max set bit; B_0 guarantees >= 0
		topLevel[v] = iu
		if own&(1<<iu) != 0 {
			sigma[v] = v
			continue
		}
		slot := agg.Slots[iu]
		if slot.Nbr < 0 {
			// OrB said a neighbor exists at iu; slots must agree.
			return nil, fmt.Errorf("core: spanner σ-selection inconsistency at vertex %d", v)
		}
		sigma[v] = int64(slot.Nbr)
		spanner = append(spanner, graph.NewEdge(int(slot.OU), int(slot.OV), slot.W))
	}

	// --- Step 5: clustering-graph edges E_lvl (Claim 2) ---
	sigMaps, err := prims.DisseminateFromLarge(c, needs, sigma, 1)
	if err != nil {
		return nil, err
	}
	n2 := int64(n) * int64(n)
	ceItems := make([][]prims.KV[clusterEdge], kk)
	if err := c.ForSmall(func(i int) error {
		for _, e := range edges[i] {
			su, okU := sigMaps[i][int64(e.U)]
			sv, okV := sigMaps[i][int64(e.V)]
			if !okU || !okV || su == sv {
				continue
			}
			du, dv := degMaps[i][int64(e.U)], degMaps[i][int64(e.V)]
			md := du
			if dv < md {
				md = dv
			}
			lvl := bits.Len64(uint64(md)) - 1
			if lvl >= levels {
				lvl = levels - 1
			}
			a, b := int(su), int(sv)
			if a > b {
				a, b = b, a
			}
			key := int64(lvl)*n2 + int64(a)*int64(n) + int64(b)
			ceItems[i] = append(ceItems[i], prims.KV[clusterEdge]{
				K: key,
				V: clusterEdge{U: a, V: b, Orig: e},
			})
		}
		return nil
	}); err != nil {
		return nil, err
	}
	ceCombine := func(a, b clusterEdge) clusterEdge {
		if b.Orig.U < a.Orig.U || (b.Orig.U == a.Orig.U && b.Orig.V < a.Orig.V) {
			return b
		}
		return a
	}
	ceRoots, _, err := prims.AggregateByKey(c, ceItems, clusterEdgeWords, ceCombine, false)
	if err != nil {
		return nil, err
	}
	// Reorganize per machine into per-level edge lists and report counts.
	perLvl := make([][][]clusterEdge, kk)
	lvlCounts := make([][]int64, kk)
	if err := c.ForSmall(func(i int) error {
		perLvl[i] = make([][]clusterEdge, levels)
		lvlCounts[i] = make([]int64, levels)
		keys := make([]int64, 0, len(ceRoots[i]))
		for key := range ceRoots[i] {
			keys = append(keys, key)
		}
		prims.SortInts(keys)
		for _, key := range keys {
			lvl := int(key / n2)
			perLvl[i][lvl] = append(perLvl[i][lvl], ceRoots[i][key])
			lvlCounts[i][lvl]++
		}
		return nil
	}); err != nil {
		return nil, err
	}
	countMsgs := make([][]mpc.Msg, kk)
	for i := 0; i < kk; i++ {
		countMsgs[i] = []mpc.Msg{{To: mpc.Large, Words: levels, Data: lvlCounts[i]}}
	}
	_, inLarge, err := c.Exchange(countMsgs, nil)
	if err != nil {
		return nil, err
	}
	totals := make([]int64, levels)
	for _, m := range inLarge {
		cs, ok := m.Data.([]int64)
		if !ok {
			return nil, fmt.Errorf("core: unexpected count payload %T", m.Data)
		}
		for lvl, cnt := range cs {
			totals[lvl] += cnt
		}
	}

	// --- Step 6: per-level plan (direct vs modified Baswana-Sen) ---
	pLvl := make([]float64, levels)
	direct := make([]bool, levels)
	fk := float64(k)
	budgetPerLvl := int64(c.LargeCap()) / int64(4*levels*(clusterEdgeWords+2))
	for lvl := 0; lvl < levels; lvl++ {
		if lvl == 0 {
			direct[0] = true
			pLvl[0] = 1
			continue
		}
		p := fk * fk * math.Pow(float64(lvl), 1+1/fk) / math.Pow(2, float64(lvl))
		if p >= 1 || totals[lvl] <= int64(n) {
			direct[lvl] = true
			pLvl[lvl] = 1
			continue
		}
		// Capacity clamp (smaller p still yields a valid, slightly larger
		// spanner by Lemma 4.3).
		if exp := p * float64(totals[lvl]) * fk; exp > float64(budgetPerLvl) {
			p = float64(budgetPerLvl) / (float64(totals[lvl]) * fk)
		}
		pLvl[lvl] = p
		res.SampledLevels++
	}
	type plan struct {
		Direct []bool
		P      []float64
	}
	plans, err := prims.BroadcastValue(c, plan{Direct: direct, P: pLvl}, 2*levels)
	if err != nil {
		return nil, err
	}

	// --- Step 7: direct levels — ship whole clustering graphs ---
	type lvlEdge struct {
		Lvl int32
		E   clusterEdge
	}
	directData := make([][]lvlEdge, kk)
	if err := c.ForSmall(func(i int) error {
		for lvl := 0; lvl < levels; lvl++ {
			if !plans[i].Direct[lvl] {
				continue
			}
			for _, e := range perLvl[i][lvl] {
				directData[i] = append(directData[i], lvlEdge{Lvl: int32(lvl), E: e})
			}
		}
		return nil
	}); err != nil {
		return nil, err
	}
	directEdges, err := prims.GatherToLarge(c, directData, clusterEdgeWords+1)
	if err != nil {
		return nil, err
	}
	// Vertex sets V_lvl = {σ_u : i_u >= lvl}.
	vSets := make([][]int, levels)
	for v, iu := range topLevel {
		s := int(sigma[v])
		for lvl := 0; lvl <= iu && lvl < levels; lvl++ {
			vSets[lvl] = append(vSets[lvl], s)
		}
	}
	for lvl := range vSets {
		vSets[lvl] = dedupInts(vSets[lvl])
	}
	byLvl := make([][]clusterEdge, levels)
	for _, le := range directEdges {
		byLvl[le.Lvl] = append(byLvl[le.Lvl], le.E)
	}
	const greedyLimit = 60000
	for lvl := 0; lvl < levels; lvl++ {
		if !direct[lvl] || len(byLvl[lvl]) == 0 {
			continue
		}
		res.DirectLevels++
		var h []graph.Edge
		if len(byLvl[lvl]) <= greedyLimit {
			h = greedySpanner(vSets[lvl], byLvl[lvl], k)
		} else {
			h = baswanaSenLocal(vSets[lvl], byLvl[lvl], k, lrng)
		}
		spanner = append(spanner, h...)
	}

	// --- Step 8: sampled levels — modified Baswana-Sen, all levels batched ---
	type sampledEdge struct {
		Lvl     int32
		BSLevel int32
		E       clusterEdge
	}
	sampData := make([][]sampledEdge, kk)
	if err := c.ForSmall(func(i int) error {
		rng := c.Rand(i)
		for lvl := 0; lvl < levels; lvl++ {
			if plans[i].Direct[lvl] {
				continue
			}
			p := plans[i].P[lvl]
			for _, e := range perLvl[i][lvl] {
				for bsl := 1; bsl <= k; bsl++ {
					if rng.Float64() < p {
						sampData[i] = append(sampData[i], sampledEdge{Lvl: int32(lvl), BSLevel: int32(bsl), E: e})
					}
				}
			}
		}
		return nil
	}); err != nil {
		return nil, err
	}
	sampEdges, err := prims.GatherToLarge(c, sampData, clusterEdgeWords+2)
	if err != nil {
		return nil, err
	}
	// Per sampled level: run lines 1-15 on the large machine.
	type ctrTable struct{ C []int32 }
	tables := make([]*bsTables, levels)
	tableValues := make(map[int64]ctrTable) // key = lvl*n + clusterID
	for lvl := 0; lvl < levels; lvl++ {
		if direct[lvl] {
			continue
		}
		sampledAdj := make([]map[int][]bsHalf, k)
		for i := range sampledAdj {
			sampledAdj[i] = make(map[int][]bsHalf)
		}
		for _, se := range sampEdges {
			if int(se.Lvl) != lvl {
				continue
			}
			a := sampledAdj[se.BSLevel-1]
			a[se.E.U] = append(a[se.E.U], bsHalf{To: se.E.V, Orig: se.E.Orig})
			a[se.E.V] = append(a[se.E.V], bsHalf{To: se.E.U, Orig: se.E.Orig})
		}
		verts := vSets[lvl]
		prob := 1 / math.Pow(float64(maxInt(2, len(verts))), 1/fk)
		t, reclust := bsPhase1(verts, sampledAdj, k, prob, lrng)
		tables[lvl] = t
		spanner = append(spanner, reclust...)
		for _, v := range verts {
			tc := make([]int32, k+1)
			for i := 0; i <= k; i++ {
				tc[i] = int32(t.Centers[i][v])
			}
			tableValues[int64(lvl)*int64(n)+int64(v)] = ctrTable{C: tc}
		}
	}

	// Disseminate the cluster tables to machines holding sampled-level
	// clustering edges, then run lines 16-18 distributed.
	tblNeeds := make([][]int64, kk)
	if err := c.ForSmall(func(i int) error {
		seen := make(map[int64]bool)
		for lvl := 0; lvl < levels; lvl++ {
			if plans[i].Direct[lvl] {
				continue
			}
			for _, e := range perLvl[i][lvl] {
				for _, v := range [2]int{e.U, e.V} {
					key := int64(lvl)*int64(n) + int64(v)
					if !seen[key] {
						seen[key] = true
						tblNeeds[i] = append(tblNeeds[i], key)
					}
				}
			}
		}
		slices.Sort(tblNeeds[i])
		return nil
	}); err != nil {
		return nil, err
	}
	tblMaps, err := prims.DisseminateFromLarge(c, tblNeeds, tableValues, k+2)
	if err != nil {
		return nil, err
	}

	// Removal candidates: key (lvl, removed cluster v, adjacent center c),
	// value = edge with the smallest neighbor id (Claim 2, as in §4).
	type remVal struct {
		U    int32
		Orig graph.Edge
	}
	remItems := make([][]prims.KV[remVal], kk)
	if err := c.ForSmall(func(i int) error {
		for lvl := 0; lvl < levels; lvl++ {
			if plans[i].Direct[lvl] {
				continue
			}
			for _, e := range perLvl[i][lvl] {
				tu, okU := tblMaps[i][int64(lvl)*int64(n)+int64(e.U)]
				tv, okV := tblMaps[i][int64(lvl)*int64(n)+int64(e.V)]
				if !okU || !okV {
					continue
				}
				for dir := 0; dir < 2; dir++ {
					v, u := e.U, e.V
					cv, cu := tu.C, tv.C
					if dir == 1 {
						v, u = e.V, e.U
						cv, cu = tv.C, tu.C
					}
					// Find v's removal level.
					ri := -1
					for x := 1; x <= k; x++ {
						if cv[x-1] >= 0 && cv[x] < 0 {
							ri = x
							break
						}
					}
					if ri < 0 {
						continue
					}
					cc := cu[ri-1]
					if cc < 0 || cc == cv[ri-1] {
						continue
					}
					key := (int64(lvl)*int64(n)+int64(v))*int64(n) + int64(cc)
					remItems[i] = append(remItems[i], prims.KV[remVal]{
						K: key,
						V: remVal{U: int32(u), Orig: e.Orig},
					})
				}
			}
		}
		return nil
	}); err != nil {
		return nil, err
	}
	remRoots, _, err := prims.AggregateByKey(c, remItems, 4,
		func(a, b remVal) remVal {
			if b.U < a.U {
				return b
			}
			return a
		}, false)
	if err != nil {
		return nil, err
	}
	remData := make([][]graph.Edge, kk)
	if err := c.ForSmall(func(i int) error {
		keys := make([]int64, 0, len(remRoots[i]))
		for key := range remRoots[i] {
			keys = append(keys, key)
		}
		prims.SortInts(keys)
		for _, key := range keys {
			remData[i] = append(remData[i], remRoots[i][key].Orig)
		}
		return nil
	}); err != nil {
		return nil, err
	}
	remEdges, err := prims.GatherToLarge(c, remData, prims.EdgeWords)
	if err != nil {
		return nil, err
	}
	spanner = append(spanner, remEdges...)

	res.Edges = dedupeEdges(spanner)
	return res, nil
}

// dedupInts sorts and deduplicates.
func dedupInts(xs []int) []int {
	sort.Ints(xs)
	out := xs[:0]
	for i, x := range xs {
		if i == 0 || x != xs[i-1] {
			out = append(out, x)
		}
	}
	return out
}

// SpannerWeighted computes an O(k)-spanner for a weighted graph by the
// standard reduction (§4 / [22]): edges are partitioned into O(log W)
// geometric weight classes, an unweighted spanner is built per class, and
// the union is returned. Stretch is 12k-1 with size O(n^{1+1/k} log n). The
// classes are processed sequentially (DESIGN.md substitution 2); the
// per-class round count is the O(1) the paper asserts.
func SpannerWeighted(c *mpc.Cluster, g *graph.Graph, k int) (*SpannerResult, error) {
	if !c.HasLarge() {
		return nil, errNeedsLarge("SpannerWeighted")
	}
	sp := c.Span("spanner-weighted")
	res := &SpannerResult{Stretch: 12*k - 1}
	defer func() { res.Stats = statsOf(sp.End()) }()
	var maxW int64 = 1
	for _, e := range g.Edges {
		if e.W > maxW {
			maxW = e.W
		}
	}
	classes := bits.Len64(uint64(maxW))
	var all []graph.Edge
	for cls := 0; cls < classes; cls++ {
		lo, hi := int64(1)<<cls, int64(1)<<(cls+1)
		var sub []graph.Edge
		for _, e := range g.Edges {
			if e.W >= lo && e.W < hi {
				sub = append(sub, e)
			}
		}
		if len(sub) == 0 {
			continue
		}
		sg := &graph.Graph{N: g.N, Edges: sub, Weighted: true}
		r, err := Spanner(c, sg, k)
		if err != nil {
			return nil, err
		}
		all = append(all, r.Edges...)
	}
	res.Edges = dedupeEdges(all)
	return res, nil
}
