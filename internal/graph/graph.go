// Package graph provides the graph substrate for the heterogeneous-MPC
// reproduction: edge-list graphs, workload generators, and exact reference
// algorithms (Kruskal, BFS/Dijkstra, Stoer-Wagner, connected components) used
// to validate every distributed algorithm's output.
//
// Conventions, following the paper (§2 Preliminaries):
//   - vertices are 0..N-1; edges are undirected and stored with U < V;
//   - weights are positive integers bounded by poly(n); weight ties are
//     broken lexicographically by (W, U, V), which makes every graph behave
//     as if its weights were unique (the paper's standing assumption);
//   - unweighted graphs carry W == 1 on every edge.
package graph

import (
	"cmp"
	"fmt"
	"slices"
)

// Edge is an undirected edge with U < V and positive integer weight W.
type Edge struct {
	U, V int
	W    int64
}

// NewEdge returns the canonical form of the edge {u, v} with weight w.
func NewEdge(u, v int, w int64) Edge {
	if u > v {
		u, v = v, u
	}
	return Edge{U: u, V: v, W: w}
}

// Key packs the canonical endpoint pair into a single int64, suitable for map
// keys and sketch universe indices. n is the vertex count.
func (e Edge) Key(n int) int64 { return int64(e.U)*int64(n) + int64(e.V) }

// Less orders edges by (W, U, V); this is the unique-weight tie-breaking
// order used by every MST-related computation.
func (e Edge) Less(o Edge) bool { return e.Compare(o) < 0 }

// Compare is the three-way (W, U, V) order, for the generic slices sorts.
func (e Edge) Compare(o Edge) int {
	if c := cmp.Compare(e.W, o.W); c != 0 {
		return c
	}
	if c := cmp.Compare(e.U, o.U); c != 0 {
		return c
	}
	return cmp.Compare(e.V, o.V)
}

// CompareEndpoints is the three-way (U, V) order, ignoring weights (the
// deterministic output order of unweighted edge lists).
func CompareEndpoints(a, b Edge) int {
	if c := cmp.Compare(a.U, b.U); c != 0 {
		return c
	}
	return cmp.Compare(a.V, b.V)
}

// Other returns the endpoint of e that is not x.
func (e Edge) Other(x int) int {
	if e.U == x {
		return e.V
	}
	return e.U
}

func (e Edge) String() string { return fmt.Sprintf("{%d-%d w%d}", e.U, e.V, e.W) }

// Graph is an undirected graph given as an edge list.
type Graph struct {
	N        int
	Edges    []Edge
	Weighted bool
}

// New returns a graph over n vertices with the given edges, canonicalized and
// deduplicated (keeping the lightest copy of any parallel edge).
func New(n int, edges []Edge, weighted bool) *Graph {
	seen := make(map[int64]int, len(edges))
	out := make([]Edge, 0, len(edges))
	for _, e := range edges {
		e = NewEdge(e.U, e.V, e.W)
		if e.U == e.V {
			continue // drop self-loops
		}
		k := e.Key(n)
		if j, ok := seen[k]; ok {
			if e.Less(out[j]) {
				out[j] = e
			}
			continue
		}
		seen[k] = len(out)
		out = append(out, e)
	}
	return &Graph{N: n, Edges: out, Weighted: weighted}
}

// M returns the number of edges.
func (g *Graph) M() int { return len(g.Edges) }

// Half is one direction of an edge in an adjacency list.
type Half struct {
	To int
	W  int64
}

// Adj builds the adjacency-list representation.
func (g *Graph) Adj() [][]Half {
	adj := make([][]Half, g.N)
	deg := make([]int, g.N)
	for _, e := range g.Edges {
		deg[e.U]++
		deg[e.V]++
	}
	for v := range adj {
		adj[v] = make([]Half, 0, deg[v])
	}
	for _, e := range g.Edges {
		adj[e.U] = append(adj[e.U], Half{To: e.V, W: e.W})
		adj[e.V] = append(adj[e.V], Half{To: e.U, W: e.W})
	}
	return adj
}

// Degrees returns the degree of every vertex.
func (g *Graph) Degrees() []int {
	deg := make([]int, g.N)
	for _, e := range g.Edges {
		deg[e.U]++
		deg[e.V]++
	}
	return deg
}

// MaxDegree returns Δ, the maximum degree (0 for the empty graph).
func (g *Graph) MaxDegree() int {
	max := 0
	for _, d := range g.Degrees() {
		if d > max {
			max = d
		}
	}
	return max
}

// AvgDegree returns the average degree 2m/n.
func (g *Graph) AvgDegree() float64 {
	if g.N == 0 {
		return 0
	}
	return 2 * float64(len(g.Edges)) / float64(g.N)
}

// Unweighted returns a copy of g with every edge weight set to 1.
func (g *Graph) Unweighted() *Graph {
	edges := make([]Edge, len(g.Edges))
	for i, e := range g.Edges {
		edges[i] = Edge{U: e.U, V: e.V, W: 1}
	}
	return &Graph{N: g.N, Edges: edges, Weighted: false}
}

// SortEdges sorts the edge list in (W, U, V) order, in place.
func (g *Graph) SortEdges() {
	slices.SortFunc(g.Edges, Edge.Compare)
}

// TotalWeight returns the sum of all edge weights.
func (g *Graph) TotalWeight() int64 {
	var s int64
	for _, e := range g.Edges {
		s += e.W
	}
	return s
}
