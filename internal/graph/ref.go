package graph

import (
	"container/heap"
	"math"
	"slices"

	"hetmpc/internal/unionfind"
)

// KruskalMSF returns the minimum spanning forest of g under the (W, U, V)
// tie-breaking order, together with its total weight. This is the ground
// truth every distributed MST run is validated against.
func KruskalMSF(g *Graph) ([]Edge, int64) {
	edges := make([]Edge, len(g.Edges))
	copy(edges, g.Edges)
	slices.SortFunc(edges, Edge.Compare)
	dsu := unionfind.New(g.N)
	out := make([]Edge, 0, g.N-1)
	var total int64
	for _, e := range edges {
		if dsu.Union(e.U, e.V) {
			out = append(out, e)
			total += e.W
		}
	}
	return out, total
}

// Components returns per-vertex component labels (the smallest vertex id in
// each component) and the number of components.
func Components(g *Graph) ([]int, int) {
	return ComponentsOf(g.N, g.Edges)
}

// ComponentsOf is Components over an explicit edge list.
func ComponentsOf(n int, edges []Edge) ([]int, int) {
	dsu := unionfind.New(n)
	for _, e := range edges {
		dsu.Union(e.U, e.V)
	}
	// Relabel each component by its smallest member for stable output.
	min := make([]int, n)
	for i := range min {
		min[i] = n
	}
	for v := 0; v < n; v++ {
		r := dsu.Find(v)
		if v < min[r] {
			min[r] = v
		}
	}
	labels := make([]int, n)
	for v := 0; v < n; v++ {
		labels[v] = min[dsu.Find(v)]
	}
	return labels, dsu.Count()
}

// BFSDist returns unweighted distances from src (math.MaxInt for
// unreachable vertices).
func BFSDist(adj [][]Half, src int) []int {
	dist := make([]int, len(adj))
	for i := range dist {
		dist[i] = math.MaxInt
	}
	dist[src] = 0
	queue := []int{src}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, h := range adj[v] {
			if dist[h.To] == math.MaxInt {
				dist[h.To] = dist[v] + 1
				queue = append(queue, h.To)
			}
		}
	}
	return dist
}

// DijkstraDist returns weighted distances from src (math.MaxInt64 for
// unreachable vertices).
func DijkstraDist(adj [][]Half, src int) []int64 {
	dist := make([]int64, len(adj))
	for i := range dist {
		dist[i] = math.MaxInt64
	}
	dist[src] = 0
	pq := &distHeap{{v: src, d: 0}}
	for pq.Len() > 0 {
		it := heap.Pop(pq).(distItem)
		if it.d > dist[it.v] {
			continue
		}
		for _, h := range adj[it.v] {
			if nd := it.d + h.W; nd < dist[h.To] {
				dist[h.To] = nd
				heap.Push(pq, distItem{v: h.To, d: nd})
			}
		}
	}
	return dist
}

type distItem struct {
	v int
	d int64
}

type distHeap []distItem

func (h distHeap) Len() int           { return len(h) }
func (h distHeap) Less(i, j int) bool { return h[i].d < h[j].d }
func (h distHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *distHeap) Push(x any)        { *h = append(*h, x.(distItem)) }
func (h *distHeap) Pop() any          { old := *h; n := len(old); it := old[n-1]; *h = old[:n-1]; return it }

// StoerWagner computes the exact global minimum cut weight of a connected
// graph (parallel edges are merged by weight addition). It returns
// math.MaxInt64 for graphs with fewer than 2 vertices and panics on nothing:
// disconnected inputs yield 0, which is the correct min cut.
func StoerWagner(g *Graph) int64 {
	n := g.N
	if n < 2 {
		return math.MaxInt64
	}
	// Dense adjacency of accumulated weights.
	w := make([][]int64, n)
	for i := range w {
		w[i] = make([]int64, n)
	}
	for _, e := range g.Edges {
		w[e.U][e.V] += e.W
		w[e.V][e.U] += e.W
	}
	active := make([]int, n)
	for i := range active {
		active[i] = i
	}
	best := int64(math.MaxInt64)
	// Repeatedly run minimum-cut-phase, merging the last two vertices.
	for len(active) > 1 {
		// Maximum adjacency search from active[0].
		inA := make(map[int]bool, len(active))
		weights := make(map[int]int64, len(active))
		order := make([]int, 0, len(active))
		for len(order) < len(active) {
			// pick the most tightly connected remaining vertex
			sel, selW := -1, int64(-1)
			for _, v := range active {
				if inA[v] {
					continue
				}
				if weights[v] > selW {
					sel, selW = v, weights[v]
				}
			}
			inA[sel] = true
			order = append(order, sel)
			for _, v := range active {
				if !inA[v] {
					weights[v] += w[sel][v]
				}
			}
		}
		t := order[len(order)-1]
		s := order[len(order)-2]
		cutOfPhase := weights[t]
		if cutOfPhase < best {
			best = cutOfPhase
		}
		// Merge t into s.
		for _, v := range active {
			if v != s && v != t {
				w[s][v] += w[t][v]
				w[v][s] = w[s][v]
			}
		}
		na := active[:0]
		for _, v := range active {
			if v != t {
				na = append(na, v)
			}
		}
		active = na
	}
	return best
}

// GreedyMatching scans the edges in the given order and adds each edge whose
// endpoints are both unmatched. matched may carry pre-matched vertices (it is
// mutated); pass nil for a fresh matching. Returns the added edges.
func GreedyMatching(n int, edges []Edge, matched []bool) ([]Edge, []bool) {
	if matched == nil {
		matched = make([]bool, n)
	}
	out := make([]Edge, 0, len(edges)/2)
	for _, e := range edges {
		if !matched[e.U] && !matched[e.V] {
			matched[e.U] = true
			matched[e.V] = true
			out = append(out, e)
		}
	}
	return out, matched
}

// GreedyMIS processes the vertices in the given order, adding each vertex
// that has no earlier neighbor in the set. dead may carry vertices already
// dominated (mutated); pass nil for a fresh run.
func GreedyMIS(adj [][]Half, order []int, dead []bool) ([]int, []bool) {
	if dead == nil {
		dead = make([]bool, len(adj))
	}
	out := make([]int, 0, len(order))
	for _, v := range order {
		if dead[v] {
			continue
		}
		out = append(out, v)
		dead[v] = true
		for _, h := range adj[v] {
			dead[h.To] = true
		}
	}
	return out, dead
}

// Eccentricity returns the maximum finite BFS distance from src.
func Eccentricity(adj [][]Half, src int) int {
	ecc := 0
	for _, d := range BFSDist(adj, src) {
		if d != math.MaxInt && d > ecc {
			ecc = d
		}
	}
	return ecc
}
