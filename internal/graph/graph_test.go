package graph

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewEdgeCanonical(t *testing.T) {
	e := NewEdge(5, 2, 7)
	if e.U != 2 || e.V != 5 || e.W != 7 {
		t.Fatalf("NewEdge(5,2,7) = %v", e)
	}
	if e.Other(2) != 5 || e.Other(5) != 2 {
		t.Fatal("Other broken")
	}
}

func TestEdgeLessTieBreak(t *testing.T) {
	a := NewEdge(0, 1, 5)
	b := NewEdge(0, 2, 5)
	c := NewEdge(1, 2, 4)
	if !c.Less(a) || !a.Less(b) || b.Less(a) {
		t.Fatal("Less ordering wrong")
	}
	if a.Less(a) {
		t.Fatal("Less must be irreflexive")
	}
}

func TestNewDedupesAndDropsSelfLoops(t *testing.T) {
	g := New(4, []Edge{
		{U: 0, V: 1, W: 5},
		{U: 1, V: 0, W: 3}, // parallel, lighter: should win
		{U: 2, V: 2, W: 1}, // self loop: dropped
		{U: 2, V: 3, W: 9},
	}, true)
	if g.M() != 2 {
		t.Fatalf("M = %d, want 2", g.M())
	}
	if g.Edges[0].W != 3 {
		t.Fatalf("parallel dedupe kept weight %d, want 3", g.Edges[0].W)
	}
}

func TestDegreesAndAdj(t *testing.T) {
	g := Star(5)
	deg := g.Degrees()
	if deg[0] != 4 {
		t.Fatalf("hub degree %d, want 4", deg[0])
	}
	for v := 1; v < 5; v++ {
		if deg[v] != 1 {
			t.Fatalf("leaf %d degree %d, want 1", v, deg[v])
		}
	}
	if g.MaxDegree() != 4 {
		t.Fatalf("MaxDegree %d", g.MaxDegree())
	}
	adj := g.Adj()
	if len(adj[0]) != 4 || len(adj[3]) != 1 {
		t.Fatal("Adj sizes wrong")
	}
}

func TestGNMProperties(t *testing.T) {
	g := GNM(100, 300, 7)
	if g.N != 100 || g.M() != 300 {
		t.Fatalf("GNM dims %d %d", g.N, g.M())
	}
	seen := map[int64]bool{}
	for _, e := range g.Edges {
		if e.U >= e.V {
			t.Fatalf("non-canonical edge %v", e)
		}
		k := e.Key(g.N)
		if seen[k] {
			t.Fatalf("duplicate edge %v", e)
		}
		seen[k] = true
	}
	// Determinism.
	g2 := GNM(100, 300, 7)
	for i := range g.Edges {
		if g.Edges[i] != g2.Edges[i] {
			t.Fatal("GNM not deterministic")
		}
	}
	// Dense path (selection sampling).
	d := GNM(20, 150, 3)
	if d.M() != 150 {
		t.Fatalf("dense GNM m=%d", d.M())
	}
	// Clamping.
	c := GNM(5, 100, 3)
	if c.M() != 10 {
		t.Fatalf("clamped GNM m=%d, want 10", c.M())
	}
}

func TestGNMWeightedUniqueWeights(t *testing.T) {
	g := GNMWeighted(50, 200, 11)
	seen := map[int64]bool{}
	for _, e := range g.Edges {
		if e.W < 1 || e.W > 200 {
			t.Fatalf("weight %d out of range", e.W)
		}
		if seen[e.W] {
			t.Fatalf("duplicate weight %d", e.W)
		}
		seen[e.W] = true
	}
}

func TestConnectedGNMIsConnected(t *testing.T) {
	for _, m := range []int{99, 150, 400} {
		g := ConnectedGNM(100, m, 13, true)
		if _, cc := Components(g); cc != 1 {
			t.Fatalf("ConnectedGNM(m=%d) has %d components", m, cc)
		}
		if g.M() < 99 {
			t.Fatalf("too few edges: %d", g.M())
		}
	}
}

func TestCyclesComponents(t *testing.T) {
	for parts := 1; parts <= 3; parts++ {
		g := Cycles(99, parts, 5)
		if g.M() != 99 {
			t.Fatalf("cycles should have n edges, got %d", g.M())
		}
		if _, cc := Components(g); cc != parts {
			t.Fatalf("Cycles(99,%d) has %d components", parts, cc)
		}
		for v, d := range g.Degrees() {
			if d != 2 {
				t.Fatalf("vertex %d has degree %d in cycle graph", v, d)
			}
		}
	}
}

func TestGridPathComplete(t *testing.T) {
	g := Grid(4, 5)
	if g.N != 20 || g.M() != 4*4+3*5 {
		t.Fatalf("grid dims n=%d m=%d", g.N, g.M())
	}
	if _, cc := Components(g); cc != 1 {
		t.Fatal("grid disconnected")
	}
	p := Path(10)
	if p.M() != 9 {
		t.Fatal("path edge count")
	}
	k := Complete(8, true, 3)
	if k.M() != 28 {
		t.Fatal("complete edge count")
	}
	if k.MaxDegree() != 7 {
		t.Fatal("complete degree")
	}
}

func TestPlantedHubs(t *testing.T) {
	g := PlantedHubs(200, 4, 3, 150, 17)
	deg := g.Degrees()
	maxHub := 0
	for h := 197; h < 200; h++ {
		if deg[h] > maxHub {
			maxHub = deg[h]
		}
	}
	if maxHub < 100 {
		t.Fatalf("hub degree only %d", maxHub)
	}
	if g.AvgDegree() > 12 {
		t.Fatalf("average degree blew up: %f", g.AvgDegree())
	}
}

func TestKruskalAgainstPrimLikeBruteForce(t *testing.T) {
	// On small graphs, compare Kruskal weight to an O(2^m)-free alternative:
	// Prim's algorithm implemented independently.
	for seed := uint64(0); seed < 10; seed++ {
		g := ConnectedGNM(12, 30, seed, true)
		_, kw := KruskalMSF(g)
		pw := primWeight(g)
		if kw != pw {
			t.Fatalf("seed %d: kruskal %d != prim %d", seed, kw, pw)
		}
	}
}

func primWeight(g *Graph) int64 {
	adj := g.Adj()
	inTree := make([]bool, g.N)
	best := make([]int64, g.N)
	for i := range best {
		best[i] = math.MaxInt64
	}
	best[0] = 0
	var total int64
	for it := 0; it < g.N; it++ {
		v, bw := -1, int64(math.MaxInt64)
		for u := 0; u < g.N; u++ {
			if !inTree[u] && best[u] < bw {
				v, bw = u, best[u]
			}
		}
		if v == -1 {
			break
		}
		inTree[v] = true
		total += bw
		for _, h := range adj[v] {
			if !inTree[h.To] && h.W < best[h.To] {
				best[h.To] = h.W
			}
		}
	}
	return total
}

func TestKruskalOnForest(t *testing.T) {
	// Disconnected graph: MSF spans each component.
	g := New(6, []Edge{
		NewEdge(0, 1, 3), NewEdge(1, 2, 1), NewEdge(0, 2, 2),
		NewEdge(3, 4, 5), NewEdge(4, 5, 4), NewEdge(3, 5, 6),
	}, true)
	msf, w := KruskalMSF(g)
	if len(msf) != 4 {
		t.Fatalf("MSF size %d, want 4", len(msf))
	}
	if w != 1+2+5+4 {
		t.Fatalf("MSF weight %d", w)
	}
	if err := CheckMST(g, msf); err != nil {
		t.Fatal(err)
	}
}

func TestBFSAndDijkstraAgree(t *testing.T) {
	g := ConnectedGNM(60, 150, 21, false)
	adj := g.Adj()
	bfs := BFSDist(adj, 0)
	dij := DijkstraDist(adj, 0) // unit weights: must match BFS
	for v := range bfs {
		if int64(bfs[v]) != dij[v] {
			t.Fatalf("vertex %d: bfs %d dijkstra %d", v, bfs[v], dij[v])
		}
	}
}

func TestStoerWagnerKnownCuts(t *testing.T) {
	// A path has min cut 1.
	if got := StoerWagner(Path(6).Unweighted()); got != 1 {
		t.Fatalf("path min cut %d, want 1", got)
	}
	// A cycle has min cut 2.
	if got := StoerWagner(Cycles(8, 1, 1)); got != 2 {
		t.Fatalf("cycle min cut %d, want 2", got)
	}
	// Complete graph K_n has min cut n-1.
	if got := StoerWagner(Complete(6, false, 1)); got != 5 {
		t.Fatalf("K6 min cut %d, want 5", got)
	}
	// Planted cut is found.
	g := PlantedCut(40, 120, 3, 9, false)
	if got := StoerWagner(g); got != 3 {
		t.Fatalf("planted min cut %d, want 3", got)
	}
	// Disconnected graph has cut 0.
	two := Cycles(20, 2, 4)
	if got := StoerWagner(two); got != 0 {
		t.Fatalf("disconnected min cut %d, want 0", got)
	}
}

func TestStoerWagnerAgainstBruteForce(t *testing.T) {
	// Exhaustive over all 2^(n-1)-1 cuts on tiny weighted graphs.
	for seed := uint64(1); seed <= 6; seed++ {
		g := ConnectedGNM(9, 20, seed, true)
		want := bruteMinCut(g)
		if got := StoerWagner(g); got != want {
			t.Fatalf("seed %d: stoer-wagner %d != brute %d", seed, got, want)
		}
	}
}

func bruteMinCut(g *Graph) int64 {
	best := int64(math.MaxInt64)
	for mask := 1; mask < 1<<(g.N-1); mask++ {
		// vertex g.N-1 always on side 0 to halve the space
		var cut int64
		for _, e := range g.Edges {
			su := e.U != g.N-1 && mask&(1<<e.U) != 0
			sv := e.V != g.N-1 && mask&(1<<e.V) != 0
			if su != sv {
				cut += e.W
			}
		}
		if cut < best {
			best = cut
		}
	}
	return best
}

func TestGreedyHelpers(t *testing.T) {
	g := Cycles(10, 1, 3)
	match, _ := GreedyMatching(g.N, g.Edges, nil)
	if err := CheckMatching(g, match, false); err != nil {
		t.Fatal(err)
	}
	order := make([]int, g.N)
	for i := range order {
		order[i] = i
	}
	mis, _ := GreedyMIS(g.Adj(), order, nil)
	if err := CheckMIS(g, mis); err != nil {
		t.Fatal(err)
	}
}

func TestCheckersRejectBadSolutions(t *testing.T) {
	g := ConnectedGNM(20, 40, 3, true)
	msf, _ := KruskalMSF(g)
	// Corrupt the forest: swap one edge for a non-tree edge.
	inTree := map[int64]bool{}
	for _, e := range msf {
		inTree[e.Key(g.N)] = true
	}
	var nonTree Edge
	for _, e := range g.Edges {
		if !inTree[e.Key(g.N)] {
			nonTree = e
			break
		}
	}
	bad := append(append([]Edge{}, msf[1:]...), nonTree)
	if err := CheckMST(g, bad); err == nil {
		t.Fatal("CheckMST accepted a corrupted forest")
	}
	// Matching with shared endpoint.
	if err := CheckMatching(g, []Edge{g.Edges[0], g.Edges[0]}, false); err == nil {
		t.Fatal("CheckMatching accepted duplicate edge")
	}
	// MIS with an edge inside.
	e := g.Edges[0]
	if err := CheckMIS(g, []int{e.U, e.V}); err == nil {
		t.Fatal("CheckMIS accepted adjacent vertices")
	}
	// Coloring with a monochromatic edge.
	colors := make([]int, g.N)
	if err := CheckColoring(g, colors, 5); err == nil {
		t.Fatal("CheckColoring accepted constant coloring")
	}
}

func TestCheckSpanner(t *testing.T) {
	g := ConnectedGNM(40, 200, 5, false)
	// The graph is a 1-spanner of itself.
	if err := CheckSpanner(g, g, 1, 4, 9); err != nil {
		t.Fatal(err)
	}
	// A spanning tree is an (n-1)-spanner.
	msf, _ := KruskalMSF(g)
	h := New(g.N, msf, false)
	if err := CheckSpanner(g, h, g.N, 4, 9); err != nil {
		t.Fatal(err)
	}
	// But usually not a 2-spanner of a dense graph.
	if err := CheckSpanner(g, h, 1, 8, 9); err == nil {
		t.Fatal("tree should not be a 1-spanner")
	}
}

func TestComponentsQuickProperty(t *testing.T) {
	// Adding an edge never increases the component count.
	prop := func(seed uint64) bool {
		g := GNM(30, 25, seed%1000)
		_, cc1 := Components(g)
		extra := NewEdge(int(seed%30), int((seed/30)%30), 1)
		if extra.U == extra.V {
			return true
		}
		g2 := New(30, append(append([]Edge{}, g.Edges...), extra), false)
		_, cc2 := Components(g2)
		return cc2 <= cc1
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
