package graph

import (
	"bytes"
	"strings"
	"testing"
)

func TestWriteReadRoundTrip(t *testing.T) {
	for _, g := range []*Graph{
		GNMWeighted(50, 200, 3),
		GNM(30, 60, 5),
		New(4, nil, false),
		Cycles(60, 2, 7),
	} {
		var buf bytes.Buffer
		if err := Write(&buf, g); err != nil {
			t.Fatal(err)
		}
		got, err := Read(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if got.N != g.N || got.M() != g.M() || got.Weighted != g.Weighted {
			t.Fatalf("dims mismatch: %d/%d vs %d/%d", got.N, got.M(), g.N, g.M())
		}
		want := map[int64]int64{}
		for _, e := range g.Edges {
			want[e.Key(g.N)] = e.W
		}
		for _, e := range got.Edges {
			if want[e.Key(g.N)] != e.W {
				t.Fatalf("edge %v lost or reweighted", e)
			}
		}
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	cases := []string{
		"",
		"not-a-graph 3 1 0\n0 1 1\n",
		"hetmpc-graph 3 1 0\n0 9 1\n", // endpoint out of range
		"hetmpc-graph 3 1 0\n0 1 0\n", // non-positive weight
		"hetmpc-graph 3 2 0\n0 1 1\n", // truncated edge list
		"hetmpc-graph -1 0 0\n",       // negative n
	}
	for _, c := range cases {
		if _, err := Read(strings.NewReader(c)); err == nil {
			t.Fatalf("accepted %q", c)
		}
	}
}
