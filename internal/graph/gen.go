package graph

import (
	"hetmpc/internal/xrand"
)

// GNM returns a uniformly random simple graph with n vertices and (up to) m
// distinct edges, unweighted. If m exceeds the number of possible edges it is
// clamped.
func GNM(n, m int, seed uint64) *Graph {
	g := gnmEdges(n, m, seed)
	return &Graph{N: n, Edges: g, Weighted: false}
}

// GNMWeighted is GNM with distinct weights: a random permutation of 1..m is
// assigned to the edges, so all weights are unique (the paper's assumption).
func GNMWeighted(n, m int, seed uint64) *Graph {
	edges := gnmEdges(n, m, seed)
	assignUniqueWeights(edges, xrand.Split(seed, 1))
	return &Graph{N: n, Edges: edges, Weighted: true}
}

// ConnectedGNM returns a connected graph: a random recursive tree on n
// vertices plus random extra edges up to m total, with unique weights if
// weighted is true.
func ConnectedGNM(n, m int, seed uint64, weighted bool) *Graph {
	rng := xrand.New(seed)
	seen := make(map[int64]bool, m)
	edges := make([]Edge, 0, m)
	add := func(u, v int) bool {
		e := NewEdge(u, v, 1)
		k := e.Key(n)
		if u == v || seen[k] {
			return false
		}
		seen[k] = true
		edges = append(edges, e)
		return true
	}
	for v := 1; v < n; v++ {
		add(v, rng.IntN(v))
	}
	maxEdges := maxSimpleEdges(n)
	if m > maxEdges {
		m = maxEdges
	}
	for guard := 0; len(edges) < m && guard < 40*m+1000; guard++ {
		add(rng.IntN(n), rng.IntN(n))
	}
	if weighted {
		assignUniqueWeights(edges, xrand.Split(seed, 1))
	}
	return &Graph{N: n, Edges: edges, Weighted: weighted}
}

// Cycles returns a graph that is the disjoint union of parts cycles covering
// all n vertices (the "2-vs-1 cycle" instances from the paper's introduction
// use parts = 1 or 2). Vertex identities are shuffled so the cycle structure
// is not visible in the vertex numbering.
func Cycles(n, parts int, seed uint64) *Graph {
	if parts < 1 {
		parts = 1
	}
	if parts > n/3 {
		parts = n / 3
	}
	if parts < 1 {
		parts = 1
	}
	rng := xrand.New(seed)
	perm := rng.Perm(n)
	edges := make([]Edge, 0, n)
	// Split [0,n) into `parts` consecutive chunks, each a cycle.
	chunk := n / parts
	start := 0
	for p := 0; p < parts; p++ {
		end := start + chunk
		if p == parts-1 {
			end = n
		}
		for i := start; i < end; i++ {
			j := i + 1
			if j == end {
				j = start
			}
			edges = append(edges, NewEdge(perm[i], perm[j], 1))
		}
		start = end
	}
	return New(n, edges, false)
}

// Star returns a star with hub 0 and n-1 leaves.
func Star(n int) *Graph {
	edges := make([]Edge, 0, n-1)
	for v := 1; v < n; v++ {
		edges = append(edges, NewEdge(0, v, 1))
	}
	return &Graph{N: n, Edges: edges, Weighted: false}
}

// Path returns a path 0-1-...-n-1 with unit weights.
func Path(n int) *Graph {
	edges := make([]Edge, 0, n-1)
	for v := 0; v+1 < n; v++ {
		edges = append(edges, NewEdge(v, v+1, 1))
	}
	return &Graph{N: n, Edges: edges, Weighted: false}
}

// Grid returns an r x c grid graph (n = r*c vertices).
func Grid(r, c int) *Graph {
	idx := func(i, j int) int { return i*c + j }
	edges := make([]Edge, 0, 2*r*c)
	for i := 0; i < r; i++ {
		for j := 0; j < c; j++ {
			if j+1 < c {
				edges = append(edges, NewEdge(idx(i, j), idx(i, j+1), 1))
			}
			if i+1 < r {
				edges = append(edges, NewEdge(idx(i, j), idx(i+1, j), 1))
			}
		}
	}
	return &Graph{N: r * c, Edges: edges, Weighted: false}
}

// Complete returns the complete graph K_n, optionally with unique weights.
func Complete(n int, weighted bool, seed uint64) *Graph {
	edges := make([]Edge, 0, n*(n-1)/2)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			edges = append(edges, Edge{U: u, V: v, W: 1})
		}
	}
	if weighted {
		assignUniqueWeights(edges, seed)
	}
	return &Graph{N: n, Edges: edges, Weighted: weighted}
}

// PlantedHubs returns a graph with average degree about d on the first
// n-hubs vertices (a sparse GNM core) plus `hubs` vertices of degree about
// hubDeg each, connected to uniformly random core vertices. It is the
// workload for experiment E7: average degree stays ~d while Δ is driven by
// hubDeg.
func PlantedHubs(n, d, hubs, hubDeg int, seed uint64) *Graph {
	if hubs >= n {
		hubs = n / 4
	}
	core := n - hubs
	rng := xrand.New(xrand.Split(seed, 2))
	edges := gnmEdges(core, core*d/2, seed)
	seen := make(map[int64]bool, len(edges)+hubs*hubDeg)
	for _, e := range edges {
		seen[e.Key(n)] = true
	}
	for h := 0; h < hubs; h++ {
		hub := core + h
		for t := 0; t < hubDeg; t++ {
			v := rng.IntN(core)
			e := NewEdge(hub, v, 1)
			k := e.Key(n)
			if seen[k] {
				continue
			}
			seen[k] = true
			edges = append(edges, e)
		}
	}
	return &Graph{N: n, Edges: edges, Weighted: false}
}

// PlantedCut returns a graph made of two dense GNM halves joined by exactly
// `cut` random cross edges: its minimum cut is (w.h.p.) the planted one. Used
// by the min-cut experiments.
func PlantedCut(n, mPerSide, cut int, seed uint64, weighted bool) *Graph {
	half := n / 2
	a := ConnectedGNM(half, mPerSide, xrand.Split(seed, 1), false)
	b := ConnectedGNM(n-half, mPerSide, xrand.Split(seed, 2), false)
	edges := make([]Edge, 0, len(a.Edges)+len(b.Edges)+cut)
	edges = append(edges, a.Edges...)
	for _, e := range b.Edges {
		edges = append(edges, NewEdge(e.U+half, e.V+half, 1))
	}
	rng := xrand.New(xrand.Split(seed, 3))
	seen := make(map[int64]bool, cut)
	for len(seen) < cut {
		u, v := rng.IntN(half), half+rng.IntN(n-half)
		e := NewEdge(u, v, 1)
		k := e.Key(n)
		if seen[k] {
			continue
		}
		seen[k] = true
		edges = append(edges, e)
	}
	g := New(n, edges, weighted)
	if weighted {
		assignUniqueWeights(g.Edges, xrand.Split(seed, 4))
		// Keep weights small on the cut edges so the planted cut stays minimal.
		for i, e := range g.Edges {
			g.Edges[i].W = e.W%16 + 1
		}
	}
	return g
}

// --- helpers ---

func maxSimpleEdges(n int) int { return n * (n - 1) / 2 }

// gnmEdges draws m distinct edges uniformly. For dense requests it
// enumerates all pairs and samples without replacement; for sparse requests
// it rejection-samples.
func gnmEdges(n, m int, seed uint64) []Edge {
	maxE := maxSimpleEdges(n)
	if m > maxE {
		m = maxE
	}
	rng := xrand.New(seed)
	if m*3 >= maxE {
		all := make([]Edge, 0, maxE)
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				all = append(all, Edge{U: u, V: v, W: 1})
			}
		}
		rng.Shuffle(len(all), func(i, j int) { all[i], all[j] = all[j], all[i] })
		return all[:m]
	}
	seen := make(map[int64]bool, m)
	edges := make([]Edge, 0, m)
	for len(edges) < m {
		u, v := rng.IntN(n), rng.IntN(n)
		if u == v {
			continue
		}
		e := NewEdge(u, v, 1)
		k := e.Key(n)
		if seen[k] {
			continue
		}
		seen[k] = true
		edges = append(edges, e)
	}
	return edges
}

// assignUniqueWeights gives the edges a random permutation of 1..len(edges)
// as weights, guaranteeing uniqueness.
func assignUniqueWeights(edges []Edge, seed uint64) {
	rng := xrand.New(seed)
	perm := rng.Perm(len(edges))
	for i := range edges {
		edges[i].W = int64(perm[i]) + 1
	}
}
