package graph

import (
	"bufio"
	"fmt"
	"io"
)

// Write emits the graph in the repository's plain text format:
//
//	hetmpc-graph <n> <m> <weighted:0|1>
//	<u> <v> <w>      (one line per edge)
//
// The format is consumed by Read and by cmd/hetrun -input.
func Write(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	weighted := 0
	if g.Weighted {
		weighted = 1
	}
	if _, err := fmt.Fprintf(bw, "hetmpc-graph %d %d %d\n", g.N, len(g.Edges), weighted); err != nil {
		return err
	}
	for _, e := range g.Edges {
		if _, err := fmt.Fprintf(bw, "%d %d %d\n", e.U, e.V, e.W); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Read parses a graph written by Write.
func Read(r io.Reader) (*Graph, error) {
	br := bufio.NewReader(r)
	var (
		magic    string
		n, m, wf int
	)
	if _, err := fmt.Fscan(br, &magic, &n, &m, &wf); err != nil {
		return nil, fmt.Errorf("graph: bad header: %w", err)
	}
	if magic != "hetmpc-graph" {
		return nil, fmt.Errorf("graph: bad magic %q", magic)
	}
	if n < 0 || m < 0 {
		return nil, fmt.Errorf("graph: negative dimensions")
	}
	edges := make([]Edge, 0, m)
	for i := 0; i < m; i++ {
		var u, v int
		var w int64
		if _, err := fmt.Fscan(br, &u, &v, &w); err != nil {
			return nil, fmt.Errorf("graph: edge %d: %w", i, err)
		}
		if u < 0 || u >= n || v < 0 || v >= n {
			return nil, fmt.Errorf("graph: edge %d endpoints out of range", i)
		}
		if w < 1 {
			return nil, fmt.Errorf("graph: edge %d has non-positive weight", i)
		}
		edges = append(edges, NewEdge(u, v, w))
	}
	return New(n, edges, wf == 1), nil
}
