package graph

import (
	"fmt"
	"math"

	"hetmpc/internal/unionfind"
	"hetmpc/internal/xrand"
)

// CheckSpanningForest verifies that treeEdges is a spanning forest of g:
// every edge exists in g, the edge set is acyclic, and it connects exactly
// what g connects. Returns nil on success.
func CheckSpanningForest(g *Graph, treeEdges []Edge) error {
	present := make(map[int64]Edge, len(g.Edges))
	for _, e := range g.Edges {
		present[e.Key(g.N)] = e
	}
	dsu := unionfind.New(g.N)
	for _, e := range treeEdges {
		e = NewEdge(e.U, e.V, e.W)
		orig, ok := present[e.Key(g.N)]
		if !ok {
			return fmt.Errorf("tree edge %v not in graph", e)
		}
		if orig.W != e.W {
			return fmt.Errorf("tree edge %v has weight %d in graph", e, orig.W)
		}
		if !dsu.Union(e.U, e.V) {
			return fmt.Errorf("tree edge %v closes a cycle", e)
		}
	}
	_, cc := Components(g)
	if dsu.Count() != cc {
		return fmt.Errorf("forest has %d components, graph has %d", dsu.Count(), cc)
	}
	return nil
}

// CheckMST verifies that treeEdges is a minimum spanning forest of g by
// comparing total weight with Kruskal (weights are effectively unique under
// tie-breaking, so weight equality implies the same forest).
func CheckMST(g *Graph, treeEdges []Edge) error {
	if err := CheckSpanningForest(g, treeEdges); err != nil {
		return err
	}
	_, want := KruskalMSF(g)
	var got int64
	for _, e := range treeEdges {
		got += e.W
	}
	if got != want {
		return fmt.Errorf("forest weight %d != MSF weight %d", got, want)
	}
	return nil
}

// CheckMatching verifies that match is a matching in g (edges exist, no
// shared endpoints). If maximal is true it additionally verifies maximality:
// no remaining edge has both endpoints unmatched.
func CheckMatching(g *Graph, match []Edge, maximal bool) error {
	present := make(map[int64]bool, len(g.Edges))
	for _, e := range g.Edges {
		present[e.Key(g.N)] = true
	}
	used := make([]bool, g.N)
	for _, e := range match {
		e = NewEdge(e.U, e.V, e.W)
		if !present[e.Key(g.N)] {
			return fmt.Errorf("matching edge %v not in graph", e)
		}
		if used[e.U] || used[e.V] {
			return fmt.Errorf("matching edge %v shares an endpoint", e)
		}
		used[e.U] = true
		used[e.V] = true
	}
	if maximal {
		for _, e := range g.Edges {
			if !used[e.U] && !used[e.V] {
				return fmt.Errorf("edge %v has both endpoints unmatched", e)
			}
		}
	}
	return nil
}

// CheckMIS verifies that set is a maximal independent set of g.
func CheckMIS(g *Graph, set []int) error {
	in := make([]bool, g.N)
	for _, v := range set {
		if v < 0 || v >= g.N {
			return fmt.Errorf("vertex %d out of range", v)
		}
		in[v] = true
	}
	covered := make([]bool, g.N)
	copy(covered, in)
	for _, e := range g.Edges {
		if in[e.U] && in[e.V] {
			return fmt.Errorf("edge %v inside the set", e)
		}
		if in[e.U] {
			covered[e.V] = true
		}
		if in[e.V] {
			covered[e.U] = true
		}
	}
	for v := 0; v < g.N; v++ {
		if !covered[v] {
			return fmt.Errorf("vertex %d neither in the set nor dominated", v)
		}
	}
	return nil
}

// CheckColoring verifies that colors is a proper coloring of g using colors
// 0..maxColor inclusive.
func CheckColoring(g *Graph, colors []int, maxColor int) error {
	if len(colors) != g.N {
		return fmt.Errorf("got %d colors for %d vertices", len(colors), g.N)
	}
	for v, c := range colors {
		if c < 0 || c > maxColor {
			return fmt.Errorf("vertex %d has color %d outside [0,%d]", v, c, maxColor)
		}
	}
	for _, e := range g.Edges {
		if colors[e.U] == colors[e.V] {
			return fmt.Errorf("edge %v is monochromatic (color %d)", e, colors[e.U])
		}
	}
	return nil
}

// CheckSpanner verifies that h is a subgraph of g and that for `samples`
// random source vertices, every distance in h is at most stretch times the
// distance in g (BFS for unweighted, Dijkstra for weighted). It also checks
// that h preserves g's connectivity exactly.
func CheckSpanner(g, h *Graph, stretch int, samples int, seed uint64) error {
	present := make(map[int64]bool, len(g.Edges))
	for _, e := range g.Edges {
		present[e.Key(g.N)] = true
	}
	for _, e := range h.Edges {
		if !present[NewEdge(e.U, e.V, e.W).Key(g.N)] {
			return fmt.Errorf("spanner edge %v not in graph", e)
		}
	}
	_, ccG := Components(g)
	_, ccH := Components(h)
	if ccG != ccH {
		return fmt.Errorf("spanner has %d components, graph has %d", ccH, ccG)
	}
	adjG, adjH := g.Adj(), h.Adj()
	rng := xrand.New(seed)
	for s := 0; s < samples; s++ {
		src := rng.IntN(g.N)
		if g.Weighted {
			dg, dh := DijkstraDist(adjG, src), DijkstraDist(adjH, src)
			for v := range dg {
				if dg[v] == math.MaxInt64 {
					continue
				}
				if dh[v] == math.MaxInt64 || dh[v] > int64(stretch)*dg[v] {
					return fmt.Errorf("stretch violated: d_G(%d,%d)=%d d_H=%d limit %dx", src, v, dg[v], dh[v], stretch)
				}
			}
		} else {
			dg, dh := BFSDist(adjG, src), BFSDist(adjH, src)
			for v := range dg {
				if dg[v] == math.MaxInt {
					continue
				}
				if dh[v] == math.MaxInt || dh[v] > stretch*dg[v] {
					return fmt.Errorf("stretch violated: d_G(%d,%d)=%d d_H=%d limit %dx", src, v, dg[v], dh[v], stretch)
				}
			}
		}
	}
	return nil
}
