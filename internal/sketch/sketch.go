// Package sketch implements the linear graph sketches of Ahn, Guha and
// McGregor [1] used by the paper's O(1)-round connectivity algorithm
// (Appendix C.1): ℓ0-samplers built from geometric level sampling with
// t-wise independent hashing and one-sparse recovery with field
// fingerprints.
//
// A Sketch is a linear function of its input vector, so sketches of
// edge-partitioned neighborhoods can be added together (Property 1 in the
// paper): the small machines each sketch the edges they hold and the sums
// are formed by aggregation.
//
// The vector being sketched is the signed vertex-incidence vector a_v over
// the edge universe {(i,j) : i < j}: a_v[(i,j)] = +1 if v == i and the edge
// is present, -1 if v == j. Summing a_v over a vertex set S cancels internal
// edges, so querying the sum returns an edge of E[S, V \ S].
package sketch

import (
	"fmt"

	"hetmpc/internal/arena"
	"hetmpc/internal/graph"
	"hetmpc/internal/xrand"
)

// referenceKernels switches the package to its straightforward reference
// implementations: per-level merge loop, per-update PowModP fingerprints.
// The fast kernels compute bit-identical results (pinned by the kernel
// equivalence tests); the toggle exists so the E33 scale sweep can measure
// the speedup against asserted-identical outputs. Not safe to flip while
// sketch operations are in flight.
var referenceKernels bool

// SetReferenceKernels selects the reference (true) or optimized (false)
// kernel implementations. Used by benchmarks; the default is optimized.
func SetReferenceKernels(on bool) { referenceKernels = on }

// ReferenceKernels reports the current kernel selection.
func ReferenceKernels() bool { return referenceKernels }

// Family fixes the shared randomness of a collection of compatible sketches:
// the level hash and the fingerprint base. Sketches from the same family can
// be added; mixing families is a programming error and returns an error.
type Family struct {
	levels int
	hash   xrand.Hash
	r      uint64 // fingerprint base
	id     uint64 // for compatibility checks
}

// NewFamily creates a sketch family over a universe of at most `universe`
// indices, with shared randomness derived from seed. The number of geometric
// levels is ⌈log2 universe⌉ + 2 and the hash is Θ(log universe)-wise
// independent, as in [36].
func NewFamily(universe int64, seed uint64) *Family {
	levels := 2
	for u := int64(1); u < universe; u <<= 1 {
		levels++
	}
	return NewFamilyLevels(levels, seed)
}

// NewFamilyLevels creates a family with an explicit level count: useful when
// the number of nonzero entries is known to be far below the universe size
// (levels ≈ log2(max support) + O(1) suffice, shrinking every sketch).
func NewFamilyLevels(levels int, seed uint64) *Family {
	if levels < 2 {
		levels = 2
	}
	t := levels // t-wise independence ~ log of support
	rng := xrand.New(xrand.Split(seed, 0xF))
	return &Family{
		levels: levels,
		hash:   xrand.NewHash(xrand.Split(seed, 1), t),
		r:      rng.Uint64()%(xrand.MersennePrime-2) + 2,
		id:     xrand.SplitMix64(seed),
	}
}

// Levels returns the number of geometric levels.
func (f *Family) Levels() int { return f.levels }

// oneSparse is a one-sparse recovery structure over signed unit values.
type oneSparse struct {
	count int64  // Σ val
	z     uint64 // Σ val·idx   (wrapping arithmetic; validated by fp)
	fp    uint64 // Σ val·r^idx mod p
}

func (o *oneSparse) add(idx int64, val int, rPow uint64) {
	o.count += int64(val)
	if val > 0 {
		o.z += uint64(idx)
		o.fp = xrand.AddModP(o.fp, rPow)
	} else {
		o.z -= uint64(idx)
		o.fp = xrand.SubModP(o.fp, rPow)
	}
}

func (o *oneSparse) merge(b oneSparse) {
	o.count += b.count
	o.z += b.z
	o.fp = xrand.AddModP(o.fp, b.fp)
}

// recover attempts one-sparse recovery: it succeeds iff the structure holds
// exactly one index with value ±1 (up to the 1/p fingerprint failure
// probability).
func (o *oneSparse) recover(r uint64, universe int64) (idx int64, val int, ok bool) {
	switch o.count {
	case 1:
		idx = int64(o.z)
		val = 1
	case -1:
		idx = int64(-o.z)
		val = -1
	default:
		return 0, 0, false
	}
	if idx < 0 || idx >= universe {
		return 0, 0, false
	}
	want := xrand.PowModP(r, uint64(idx))
	if val < 0 {
		want = xrand.SubModP(0, want)
	}
	if o.fp != want {
		return 0, 0, false
	}
	return idx, val, true
}

// Sketch is an addable ℓ0-sampler over signed unit-valued vectors.
type Sketch struct {
	familyID uint64
	universe int64
	levels   []oneSparse
}

// NewSketch returns an empty sketch of the family over the given universe.
func (f *Family) NewSketch(universe int64) *Sketch {
	return &Sketch{
		familyID: f.id,
		universe: universe,
		levels:   make([]oneSparse, f.levels),
	}
}

// Words returns the communication size of the sketch in machine words.
func (s *Sketch) Words() int { return 2 + 3*len(s.levels) }

// Arena hands out sketches backed by the shared slab allocator
// (internal/arena), amortizing the allocations of NewSketch across whole
// slabs and supporting Reset reuse round over round. Sketches from an
// arena are ordinary sketches (merge, query, clone all work); the arena
// itself is not safe for concurrent use — use one per goroutine.
type Arena struct {
	f        *Family
	universe int64
	sketches arena.Arena[Sketch]
	levels   arena.Arena[oneSparse]
}

// NewArena returns an arena producing sketches of f over the universe.
// Initial slabs are sized for a few dozen sketches — small clusters
// shouldn't pay for slabs they never fill — and the arena's geometric
// slab growth covers bulk producers in O(log) allocations.
func (f *Family) NewArena(universe int64) *Arena {
	a := &Arena{f: f, universe: universe}
	const seed = 32 // sketches per initial slab
	a.sketches = *arena.New[Sketch](seed)
	a.levels = *arena.New[oneSparse](seed * f.levels)
	return a
}

// NewSketch returns a fresh empty sketch from the arena's current slab.
// Under the reference-kernel toggle it falls back to the plain heap
// allocation of Family.NewSketch, so E33 measures the slab path against
// the per-sketch allocation it replaced.
func (a *Arena) NewSketch() *Sketch {
	if referenceKernels {
		return a.f.NewSketch(a.universe)
	}
	s := &a.sketches.Alloc(1)[0]
	s.familyID = a.f.id
	s.universe = a.universe
	s.levels = a.levels.Alloc(a.f.levels)
	return s
}

// Reset reclaims every sketch the arena has handed out, retaining the
// slabs: every outstanding *Sketch becomes invalid and the next NewSketch
// reuses the memory without allocating (the arena contract, DESIGN.md §14).
func (a *Arena) Reset() {
	a.sketches.Reset()
	a.levels.Reset()
}

// Add applies a single update: vector[idx] += val, with val ∈ {+1, -1}.
func (f *Family) Add(s *Sketch, idx int64, val int) {
	if val != 1 && val != -1 {
		panic("sketch: val must be ±1") // programming error, not data error
	}
	rPow := xrand.PowModP(f.r, uint64(idx))
	h := f.hash.Eval(uint64(idx))
	addLevels(s.levels, idx, val, rPow, h)
}

// addLevels applies one precomputed update to the nested geometric levels:
// item idx belongs to level ℓ iff h < p / 2^ℓ.
func addLevels(levels []oneSparse, idx int64, val int, rPow, h uint64) {
	bound := xrand.MersennePrime
	for ℓ := 0; ℓ < len(levels); ℓ++ {
		if h >= bound {
			break
		}
		levels[ℓ].add(idx, val, rPow)
		bound >>= 1
	}
}

// AddEdgeIncidence applies the signed incidence update of edge e for
// endpoint v: +1 if v is the smaller endpoint, -1 otherwise.
func (f *Family) AddEdgeIncidence(s *Sketch, v int, e graph.Edge, n int) {
	idx := e.Key(n)
	if v == e.U {
		f.Add(s, idx, 1)
	} else {
		f.Add(s, idx, -1)
	}
}

// An EdgeUpdater accelerates the edge-incidence hot path of one family
// over the n-vertex edge universe. Edge keys factor as idx = u·n + v, so
// the fingerprint power factors as r^idx = (r^n)^u · r^v: two precomputed
// n-entry tables turn the ~61 field multiplications of PowModP into one,
// and both endpoint updates of an edge share a single fingerprint/hash
// evaluation (the update index is the same edge key for both endpoints).
// The modular arithmetic is canonical (every op reduces to [0, p)), so the
// table product is bit-identical to the PowModP result — pinned by
// TestEdgeUpdaterMatchesAddEdgeIncidence.
//
// Updaters are read-only after construction and safe to share across
// goroutines.
type EdgeUpdater struct {
	f      *Family
	n      int
	rowPow []uint64 // (r^n)^u for u in [0, n)
	colPow []uint64 // r^v for v in [0, n)
}

// NewEdgeUpdater builds the power tables of f over an n-vertex universe:
// 2n field multiplications amortized against one per subsequent update.
// Under the reference-kernel toggle the tables are skipped and every
// update falls back to PowModP.
func (f *Family) NewEdgeUpdater(n int) *EdgeUpdater {
	up := &EdgeUpdater{f: f, n: n}
	if referenceKernels {
		return up
	}
	rn := xrand.PowModP(f.r, uint64(n))
	up.rowPow = make([]uint64, n)
	up.colPow = make([]uint64, n)
	row, col := uint64(1), uint64(1)
	for i := 0; i < n; i++ {
		up.rowPow[i] = row
		up.colPow[i] = col
		row = xrand.MulModP(row, rn)
		col = xrand.MulModP(col, f.r)
	}
	return up
}

// AddEdgeBoth applies edge e's signed incidence update to both endpoint
// sketches — +1 into su (the sketch accumulating endpoint e.U), -1 into sv
// — with one fingerprint power and one hash evaluation shared across both.
// Equivalent to AddEdgeIncidence on each endpoint, bit for bit.
func (up *EdgeUpdater) AddEdgeBoth(su, sv *Sketch, e graph.Edge) {
	if up.rowPow == nil {
		up.f.AddEdgeIncidence(su, e.U, e, up.n)
		up.f.AddEdgeIncidence(sv, e.V, e, up.n)
		return
	}
	idx := e.Key(up.n)
	rPow := xrand.MulModP(up.rowPow[e.U], up.colPow[e.V])
	h := up.f.hash.Eval(uint64(idx))
	addLevels(su.levels, idx, 1, rPow, h)
	addLevels(sv.levels, idx, -1, rPow, h)
}

// Clone returns a deep copy of the sketch.
func (s *Sketch) Clone() *Sketch {
	out := &Sketch{
		familyID: s.familyID,
		universe: s.universe,
		levels:   make([]oneSparse, len(s.levels)),
	}
	copy(out.levels, s.levels)
	return out
}

// Merge adds other into s (linearity). The sketches must come from the same
// family and universe.
func (s *Sketch) Merge(other *Sketch) error {
	if s.familyID != other.familyID || s.universe != other.universe || len(s.levels) != len(other.levels) {
		return fmt.Errorf("sketch: merging incompatible sketches")
	}
	if referenceKernels {
		for i := range s.levels {
			s.levels[i].merge(other.levels[i])
		}
		return nil
	}
	mergeLevels(s.levels, other.levels)
	return nil
}

// mergeLevels is the vectorized XOR-merge kernel: component-wise sums of
// the one-sparse triples, unrolled 4-wide with the lengths equalized up
// front so the compiler drops the per-element bounds checks. Merge order
// and arithmetic are exactly the scalar loop's (field adds are canonical),
// so the result is bit-identical — pinned by TestMergeKernelMatchesScalar.
//
//hetlint:zeroalloc merge hot path; pinned by TestSketchMergeZeroAllocs
func mergeLevels(dst, src []oneSparse) {
	n := len(dst)
	if len(src) < n {
		n = len(src)
	}
	dst = dst[:n]
	src = src[:n]
	i := 0
	for ; i+4 <= n; i += 4 {
		d0, s0 := &dst[i], &src[i]
		d1, s1 := &dst[i+1], &src[i+1]
		d2, s2 := &dst[i+2], &src[i+2]
		d3, s3 := &dst[i+3], &src[i+3]
		d0.count += s0.count
		d0.z += s0.z
		d0.fp = xrand.AddModP(d0.fp, s0.fp)
		d1.count += s1.count
		d1.z += s1.z
		d1.fp = xrand.AddModP(d1.fp, s1.fp)
		d2.count += s2.count
		d2.z += s2.z
		d2.fp = xrand.AddModP(d2.fp, s2.fp)
		d3.count += s3.count
		d3.z += s3.z
		d3.fp = xrand.AddModP(d3.fp, s3.fp)
	}
	for ; i < n; i++ {
		dst[i].merge(src[i])
	}
}

// Query attempts to sample a nonzero index of the sketched vector. It scans
// from the sparsest level down and returns the first successful one-sparse
// recovery. ok=false means the vector is (probably) zero or recovery failed
// at every level; callers that need high-probability success use several
// independent families.
func (f *Family) Query(s *Sketch) (idx int64, val int, ok bool) {
	for ℓ := len(s.levels) - 1; ℓ >= 0; ℓ-- {
		if idx, val, ok = s.levels[ℓ].recover(f.r, s.universe); ok {
			return idx, val, true
		}
	}
	return 0, 0, false
}

// IsZero reports whether the sketch is of the all-zero vector (level 0
// contains every index, so an empty level 0 means an empty vector —
// deterministically for count/z, w.h.p. once fingerprints are involved).
func (s *Sketch) IsZero() bool {
	l0 := s.levels[0]
	return l0.count == 0 && l0.z == 0 && l0.fp == 0
}

// DecodeEdgeKey converts a universe index back to the edge endpoints.
func DecodeEdgeKey(idx int64, n int) (u, v int) {
	return int(idx / int64(n)), int(idx % int64(n))
}
