package sketch

import (
	"reflect"
	"testing"

	"hetmpc/internal/graph"
)

// TestEdgeUpdaterMatchesAddEdgeIncidence pins the bit-identity of the
// table-based fingerprint path: for fuzzed edge sets, AddEdgeBoth must
// leave both endpoint sketches exactly as two AddEdgeIncidence calls do —
// the canonical-residue argument made executable.
func TestEdgeUpdaterMatchesAddEdgeIncidence(t *testing.T) {
	for _, n := range []int{2, 7, 64, 513} {
		f := NewFamily(int64(n)*int64(n), uint64(n)*0xABCD)
		universe := int64(n) * int64(n)
		up := f.NewEdgeUpdater(n)
		if up.rowPow == nil {
			t.Fatal("optimized updater built without tables")
		}
		fastU, fastV := f.NewSketch(universe), f.NewSketch(universe)
		refU, refV := f.NewSketch(universe), f.NewSketch(universe)
		seed := uint64(1)
		for i := 0; i < 200; i++ {
			seed = seed*6364136223846793005 + 1442695040888963407
			u := int(seed>>33) % n
			v := int(seed>>13) % n
			if u == v {
				continue
			}
			if u > v {
				u, v = v, u
			}
			e := graph.Edge{U: u, V: v, W: 1}
			up.AddEdgeBoth(fastU, fastV, e)
			f.AddEdgeIncidence(refU, e.U, e, n)
			f.AddEdgeIncidence(refV, e.V, e, n)
		}
		if !reflect.DeepEqual(fastU.levels, refU.levels) || !reflect.DeepEqual(fastV.levels, refV.levels) {
			t.Fatalf("n=%d: updater sketches diverge from AddEdgeIncidence", n)
		}
	}
}

// TestEdgeUpdaterReferenceFallback verifies the reference toggle: an
// updater built under reference kernels carries no tables and still
// produces the identical sketches through the PowModP fallback.
func TestEdgeUpdaterReferenceFallback(t *testing.T) {
	SetReferenceKernels(true)
	defer SetReferenceKernels(false)
	n := 32
	universe := int64(n) * int64(n)
	f := NewFamily(universe, 99)
	up := f.NewEdgeUpdater(n)
	if up.rowPow != nil {
		t.Fatal("reference updater built tables")
	}
	su, sv := f.NewSketch(universe), f.NewSketch(universe)
	ru, rv := f.NewSketch(universe), f.NewSketch(universe)
	e := graph.Edge{U: 3, V: 17, W: 1}
	up.AddEdgeBoth(su, sv, e)
	f.AddEdgeIncidence(ru, e.U, e, n)
	f.AddEdgeIncidence(rv, e.V, e, n)
	if !reflect.DeepEqual(su.levels, ru.levels) || !reflect.DeepEqual(sv.levels, rv.levels) {
		t.Fatal("reference fallback diverges from AddEdgeIncidence")
	}
}

// TestMergeKernelMatchesScalar pins the unrolled merge against the scalar
// per-level loop across level counts straddling the 4-wide unroll boundary.
func TestMergeKernelMatchesScalar(t *testing.T) {
	for _, levels := range []int{2, 3, 4, 5, 8, 23} {
		f := NewFamilyLevels(levels, uint64(levels))
		universe := int64(1) << 20
		mkPair := func() (*Sketch, *Sketch) {
			a, b := f.NewSketch(universe), f.NewSketch(universe)
			seed := uint64(levels * 7)
			for i := 0; i < 64; i++ {
				seed = seed*6364136223846793005 + 1442695040888963407
				idx := int64(seed % uint64(universe))
				val := 1
				if seed&(1<<62) != 0 {
					val = -1
				}
				if i%2 == 0 {
					f.Add(a, idx, val)
				} else {
					f.Add(b, idx, val)
				}
			}
			return a, b
		}
		fastA, fastB := mkPair()
		if err := fastA.Merge(fastB); err != nil {
			t.Fatal(err)
		}
		SetReferenceKernels(true)
		refA, refB := mkPair()
		err := refA.Merge(refB)
		SetReferenceKernels(false)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(fastA.levels, refA.levels) {
			t.Fatalf("levels=%d: unrolled merge diverges from scalar merge", levels)
		}
	}
}

// TestSketchMergeZeroAllocs pins the merge hot path at zero allocations —
// the runtime counterpart of mergeLevels' zeroalloc marker.
func TestSketchMergeZeroAllocs(t *testing.T) {
	f := NewFamilyLevels(23, 5)
	universe := int64(1) << 20
	a, b := f.NewSketch(universe), f.NewSketch(universe)
	f.Add(a, 12345, 1)
	f.Add(b, 54321, -1)
	if got := testing.AllocsPerRun(100, func() {
		if err := a.Merge(b); err != nil {
			t.Fatal(err)
		}
	}); got != 0 {
		t.Errorf("Merge allocates %v per run, want 0", got)
	}
}

// TestArenaResetReusesSketchMemory verifies the sketch arena's Reset
// contract: after a Reset, NewSketch hands back the same slab memory with
// fully zeroed levels, and steady-state cycles allocate nothing.
func TestArenaResetReusesSketchMemory(t *testing.T) {
	universe := int64(1) << 12
	f := NewFamily(universe, 7)
	a := f.NewArena(universe)
	s := a.NewSketch()
	f.Add(s, 99, 1)
	a.Reset()
	s2 := a.NewSketch()
	if !s2.IsZero() {
		t.Fatal("post-Reset sketch is not zero")
	}
	for i := range s2.levels {
		if s2.levels[i] != (oneSparse{}) {
			t.Fatalf("post-Reset level %d holds stale state %+v", i, s2.levels[i])
		}
	}
	cycle := func() {
		a.Reset()
		for i := 0; i < 16; i++ {
			sk := a.NewSketch()
			f.Add(sk, int64(i), 1)
		}
	}
	cycle()
	if got := testing.AllocsPerRun(50, cycle); got != 0 {
		t.Errorf("steady-state arena cycle allocates %v per run, want 0", got)
	}
}
