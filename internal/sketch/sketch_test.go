package sketch

import (
	"testing"
	"testing/quick"

	"hetmpc/internal/graph"
	"hetmpc/internal/xrand"
)

func TestSingleItemRecovery(t *testing.T) {
	f := NewFamily(1000, 42)
	for idx := int64(0); idx < 100; idx++ {
		s := f.NewSketch(1000)
		f.Add(s, idx, 1)
		got, val, ok := f.Query(s)
		if !ok || got != idx || val != 1 {
			t.Fatalf("recovery of single +%d failed: %d %d %v", idx, got, val, ok)
		}
		s2 := f.NewSketch(1000)
		f.Add(s2, idx, -1)
		got, val, ok = f.Query(s2)
		if !ok || got != idx || val != -1 {
			t.Fatalf("recovery of single -%d failed: %d %d %v", idx, got, val, ok)
		}
	}
}

func TestCancellation(t *testing.T) {
	f := NewFamily(1<<20, 7)
	s := f.NewSketch(1 << 20)
	for i := int64(0); i < 200; i++ {
		f.Add(s, i*31%1000, 1)
	}
	for i := int64(0); i < 200; i++ {
		f.Add(s, i*31%1000, -1)
	}
	if !s.IsZero() {
		t.Fatal("fully cancelled sketch not zero")
	}
	if _, _, ok := f.Query(s); ok {
		t.Fatal("query succeeded on zero vector")
	}
}

func TestQueryReturnsPresentIndex(t *testing.T) {
	// Over many random sets, a successful query must return an index that is
	// actually in the set (no false recoveries), and the success rate must be
	// substantial.
	const universe = 1 << 16
	succ, total := 0, 0
	for trial := 0; trial < 200; trial++ {
		f := NewFamily(universe, uint64(trial)+1)
		s := f.NewSketch(universe)
		rng := xrand.New(uint64(trial) + 999)
		present := map[int64]bool{}
		size := 1 + rng.IntN(500)
		for len(present) < size {
			idx := rng.Int64N(universe)
			if !present[idx] {
				present[idx] = true
				f.Add(s, idx, 1)
			}
		}
		total++
		if idx, val, ok := f.Query(s); ok {
			if !present[idx] || val != 1 {
				t.Fatalf("trial %d: recovered absent index %d (val %d)", trial, idx, val)
			}
			succ++
		}
	}
	if succ*100 < total*50 {
		t.Fatalf("success rate too low: %d/%d", succ, total)
	}
}

func TestLinearityMergeEqualsDirect(t *testing.T) {
	const universe = 4096
	f := NewFamily(universe, 13)
	a := f.NewSketch(universe)
	b := f.NewSketch(universe)
	direct := f.NewSketch(universe)
	rng := xrand.New(55)
	for i := 0; i < 300; i++ {
		idx := rng.Int64N(universe)
		val := 1
		if rng.IntN(2) == 0 {
			val = -1
		}
		if rng.IntN(2) == 0 {
			f.Add(a, idx, val)
		} else {
			f.Add(b, idx, val)
		}
		f.Add(direct, idx, val)
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	for ℓ := range a.levels {
		if a.levels[ℓ] != direct.levels[ℓ] {
			t.Fatalf("level %d differs after merge", ℓ)
		}
	}
}

func TestMergeRejectsForeignFamily(t *testing.T) {
	f1 := NewFamily(100, 1)
	f2 := NewFamily(100, 2)
	a := f1.NewSketch(100)
	b := f2.NewSketch(100)
	if err := a.Merge(b); err == nil {
		t.Fatal("merge across families must fail")
	}
}

func TestEdgeIncidenceCancelsInternalEdges(t *testing.T) {
	// Sum the incidence sketches of a component: internal edges cancel, the
	// query returns a boundary edge. Graph: triangle {0,1,2} plus edge 2-3.
	n := 4
	edges := []graph.Edge{
		graph.NewEdge(0, 1, 1), graph.NewEdge(1, 2, 1), graph.NewEdge(0, 2, 1),
		graph.NewEdge(2, 3, 1),
	}
	universe := int64(n) * int64(n)
	f := NewFamily(universe, 77)
	sk := make([]*Sketch, n)
	for v := range sk {
		sk[v] = f.NewSketch(universe)
	}
	for _, e := range edges {
		f.AddEdgeIncidence(sk[e.U], e.U, e, n)
		f.AddEdgeIncidence(sk[e.V], e.V, e, n)
	}
	// S = {0,1,2}: only boundary edge is 2-3.
	sum := f.NewSketch(universe)
	for _, v := range []int{0, 1, 2} {
		if err := sum.Merge(sk[v]); err != nil {
			t.Fatal(err)
		}
	}
	idx, _, ok := f.Query(sum)
	if !ok {
		t.Fatal("boundary query failed")
	}
	u, v := DecodeEdgeKey(idx, n)
	if u != 2 || v != 3 {
		t.Fatalf("boundary edge recovered as %d-%d, want 2-3", u, v)
	}
	// S = all vertices: no boundary; sum must be zero.
	if err := sum.Merge(sk[3]); err != nil {
		t.Fatal(err)
	}
	if !sum.IsZero() {
		t.Fatal("whole-graph incidence sum not zero")
	}
}

func TestWordsAccounting(t *testing.T) {
	f := NewFamily(1<<10, 3)
	s := f.NewSketch(1 << 10)
	if s.Words() != 2+3*f.Levels() {
		t.Fatalf("Words = %d", s.Words())
	}
}

func TestQuickNeverRecoversAbsent(t *testing.T) {
	prop := func(seed uint64, raw []uint16) bool {
		const universe = 1 << 12
		f := NewFamily(universe, seed)
		s := f.NewSketch(universe)
		present := map[int64]int{}
		for _, r := range raw {
			idx := int64(r) % universe
			present[idx]++
			f.Add(s, idx, 1)
		}
		idx, _, ok := f.Query(s)
		if !ok {
			return true
		}
		return present[idx] > 0
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}
