package hetmpc_test

import (
	"bytes"
	"runtime"
	"testing"

	"hetmpc"
	"hetmpc/internal/exp"
)

// TestPlacementGoldenUniformEquivalence pins the placement acceptance
// criteria against the same pre-profile goldens TestUniformProfileGoldens
// uses: on a uniform cluster, throughput and speculate placement must
// reproduce the cap default bit-identically — the golden communication
// stats AND the makespan, since all shares are exactly 1 and a speculative
// copy can never beat an equal machine.
func TestPlacementGoldenUniformEquivalence(t *testing.T) {
	g := hetmpc.ConnectedGNM(512, 4096, 7, true)
	want := comm{56, 39592, 1037522, 99008, 25337}

	run := func(pol hetmpc.PlacementPolicy) hetmpc.ClusterStats {
		c, err := hetmpc.NewCluster(hetmpc.Config{N: 512, M: 4096, Seed: 7, Placement: pol})
		if err != nil {
			t.Fatal(err)
		}
		r, err := hetmpc.MST(c, g)
		if err != nil {
			t.Fatal(err)
		}
		if r.Weight != 153235 {
			t.Fatalf("mst weight %d, want golden 153235", r.Weight)
		}
		return c.Stats()
	}
	capStats := run(nil)
	if got := commOf(capStats); got != want {
		t.Fatalf("cap default diverged from the pre-policy golden: %+v, want %+v", got, want)
	}
	for _, pol := range []hetmpc.PlacementPolicy{
		hetmpc.CapPlacement{},
		hetmpc.ThroughputPlacement{},
		hetmpc.SpeculatePlacement{R: 2},
	} {
		if got := run(pol); got != capStats {
			t.Fatalf("%s on the uniform cluster not bit-identical to the default:\n got: %+v\nwant: %+v",
				pol.Name(), got, capStats)
		}
	}
}

// TestPlacementGoldenStragglerSpeculation pins the second acceptance
// criterion: on a straggler:2:8 profile, speculate strictly lowers the
// makespan against cap while the algorithm output and the comm-round
// structure stay unchanged, and the mirrored words are charged.
func TestPlacementGoldenStragglerSpeculation(t *testing.T) {
	g := hetmpc.ConnectedGNM(512, 4096, 7, true)
	run := func(pol hetmpc.PlacementPolicy) hetmpc.ClusterStats {
		cfg := hetmpc.Config{N: 512, M: 4096, Seed: 7, Placement: pol}
		p := hetmpc.StragglerProfile(cfg.DeriveK(), 2, 8)
		p.LargeSpeed, p.LargeBandwidth = 64, 64
		cfg.Profile = p
		c, err := hetmpc.NewCluster(cfg)
		if err != nil {
			t.Fatal(err)
		}
		r, err := hetmpc.MST(c, g)
		if err != nil {
			t.Fatal(err)
		}
		if r.Weight != 153235 {
			t.Fatalf("%s: mst weight %d, want golden 153235", pol.Name(), r.Weight)
		}
		return c.Stats()
	}
	capStats := run(hetmpc.CapPlacement{})
	for _, r := range []int{0, 1, 2, 4} {
		st := run(hetmpc.SpeculatePlacement{R: r})
		if st.Rounds != capStats.Rounds {
			t.Fatalf("R=%d changed the comm-round structure: %d vs %d", r, st.Rounds, capStats.Rounds)
		}
		if st.Makespan >= capStats.Makespan {
			t.Fatalf("R=%d makespan %v did not strictly beat cap %v", r, st.Makespan, capStats.Makespan)
		}
		if r > 0 && st.SpeculationWords == 0 {
			t.Fatalf("R=%d launched no speculative copies on a straggler profile", r)
		}
	}
}

// TestPlacementExperimentsDeterministicAcrossGOMAXPROCS pins the
// GOMAXPROCS-determinism golden for E23–E25: each experiment must render
// byte-identical tables on one CPU and on all of them (placement shares,
// speculation pairing and recovery pricing all run serially by design).
func TestPlacementExperimentsDeterministicAcrossGOMAXPROCS(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy experiment sweep skipped in -short mode")
	}
	for _, id := range []string{"e23", "e24", "e25"} {
		id := id
		t.Run(id, func(t *testing.T) {
			render := func() string {
				tab, err := exp.All()[id](7)
				if err != nil {
					t.Fatal(err)
				}
				var buf bytes.Buffer
				tab.Render(&buf)
				return buf.String()
			}
			prev := runtime.GOMAXPROCS(1)
			one := render()
			runtime.GOMAXPROCS(prev)
			many := render()
			if one != many {
				t.Fatalf("%s diverges across GOMAXPROCS:\n--- 1 ---\n%s\n--- n ---\n%s", id, one, many)
			}
		})
	}
}
